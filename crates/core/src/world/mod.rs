//! The packet-level simulation world tying every subsystem together.
//!
//! One [`World`] is one experiment arm: a wired topology (Internet, home
//! network with HA and CN, per-domain access networks), a radio cell map,
//! the multi-tier hierarchy with its cell tables, Mobile IP entities,
//! per-domain Cellular IP trees with (optional) RSMCs, and a population of
//! mobile nodes with multimedia flows.
//!
//! The same world type runs the paper's architecture **and** the baselines
//! (pure Mobile IP, flat Cellular IP) — the [`WorldConfig`] flags select
//! which machinery is active, so comparisons differ only in the mechanism
//! under test.

mod build;
pub(crate) mod mn;
pub mod shard;

pub use build::{DomainSpec, FlowKind, WorldBuilder};
pub use shard::run_sharded;

use mn::{MnHandle, MnTable};

use crate::arena::{PacketArena, PacketRef};
use crate::handoff::{
    classify, Candidate, CurrentAttachment, HandoffDecision, HandoffEngine, HandoffType,
};
use crate::hierarchy::{DomainId, Hierarchy};
use crate::location::LocationDirectory;
use crate::messages::{CipControl, MnId, MtMessage, Payload};
use crate::mnld::Mnld;
use crate::report::{DropCause, SimReport};
use crate::rsmc::Rsmc;
use crate::tier::Tier;
use mtnet_cellularip::{CipNetwork, CipTimers, HandoffKind, MnMode, SemisoftController};
use mtnet_mobileip::{
    AgentAdvertisement, ForeignAgent, HomeAgent, MipMessage, MnAction, RegistrationReply,
    RegistrationRequest,
};
use mtnet_net::{
    Addr, FlowId, LinkId, NodeId, PacketId, Prefix, RouteCache, Topology, TransmitOutcome,
    TunnelKind,
};
use mtnet_radio::{CallKind, CellId, CellKind, CellMap, Measurement};
use mtnet_sim::FxHashMap;
use mtnet_sim::{Context, Model, RngStream, SchedulerKind, SimDuration, SimTime, Simulator};
use mtnet_traffic::{ArrivalProcess, Cbr, FlowQos, OnOffVbr, ParetoWeb};

/// Architecture and protocol switches for one experiment arm.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Master seed for every random stream.
    pub seed: u64,
    /// Deploy macro cells (macro-tier present).
    pub has_macro: bool,
    /// Deploy micro cells (micro-tier present).
    pub has_micro: bool,
    /// RSMCs active (location cache + HA/CN notification, §4).
    pub rsmc_enabled: bool,
    /// RSMC notifies the CN as well as the HA (route optimization).
    pub notify_cn: bool,
    /// Pure Mobile IP mode: no Cellular IP at all, every BS is its own FA.
    pub mip_only: bool,
    /// Micro-tier handoff scheme (hard vs semisoft).
    pub handoff_kind: HandoffKind,
    /// Which §3.2 factors the decision engine uses.
    pub factors: crate::handoff::HandoffFactors,
    /// Decision thresholds.
    pub decision: crate::handoff::DecisionConfig,
    /// Cellular IP timers.
    pub cip_timers: CipTimers,
    /// Overrides the mobile node's route-update transmit period without
    /// touching the network's cache lifetimes — the paper's
    /// "route-update-time" is an MN knob, the cache timeout a network one.
    pub route_update_period: Option<SimDuration>,
    /// Mobility measurement period.
    pub move_sample: SimDuration,
    /// Location Message period (§3.1).
    pub location_period: SimDuration,
    /// Cell-table record time-limitation.
    pub table_lifetime: SimDuration,
    /// One-way air-interface latency (excluding serialization).
    pub air_delay: SimDuration,
    /// Radio retune time for a hard handoff.
    pub retune_delay: SimDuration,
    /// Event-queue backend for this world's run loop. Both backends pop
    /// in the identical `(time, seq)` order, so this is purely a
    /// performance knob: the calendar queue (default) is O(1) amortized,
    /// the binary heap is the O(log n) reference.
    pub scheduler: SchedulerKind,
    /// Type-batched event dispatch: the run loop hands consecutive
    /// same-instant, same-variant events to [`Model::handle_run`]
    /// together instead of popping one at a time. Ordering is identical
    /// either way, so like `scheduler` this is purely a performance
    /// knob — and one this workload cannot exploit: the paper's traffic
    /// schedules events at distinct instants (measured mean run length
    /// 1.003 over the full suite), so the default is off and the batched
    /// path is kept for tie-heavy models (slotted MACs, quantized
    /// timestamps). Overridable per-process via
    /// [`shard::DISPATCH_BATCH_ENV`].
    pub dispatch_batching: bool,
    /// World-level aggregate QoS (metro scale): per-flow trackers skip
    /// their delay distribution and every delivered packet's delay
    /// streams into one constant-memory
    /// [`crate::report::AggregateQos`] accumulator instead. Loss, jitter
    /// and throughput stay per-flow either way.
    pub aggregate_qos: bool,
    /// Deterministic diurnal load curve stretching flow inter-arrival
    /// gaps off-peak. `None` (the default) leaves traffic untouched.
    pub load_curve: Option<LoadCurve>,
    /// Metro-tier admission semantics: nodes without traffic flows camp
    /// on their serving cell (paging-level attachment, Cellular IP's
    /// idle state) instead of holding one of the cell's traffic
    /// channels. Channel pools then track the *active* population only —
    /// a million idle subscribers no longer exhaust ~10^4 channels. Off
    /// by default: every node competes for a channel, the historical
    /// behaviour E1–E13 are pinned to.
    pub idle_camping: bool,
}

/// A commute-hour load curve: a pure function of simulated time that
/// multiplies flow inter-arrival gaps, full load at the rush-hour peak
/// (mid-period) and `off_peak_factor`-times-longer gaps at the trough.
///
/// Being a pure function of `now`, the curve is identical on every
/// thread and shard — determinism is untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadCurve {
    /// Length of one diurnal cycle (peak sits at half this).
    pub period: SimDuration,
    /// Gap multiplier at the trough; must be >= 1 (1 = flat).
    pub off_peak_factor: f64,
}

impl LoadCurve {
    /// The arrival-gap multiplier at `now`:
    /// `1 + (off_peak_factor - 1) · cos²(π·t/period)` — 1.0 at the
    /// mid-period peak, `off_peak_factor` at the period edges.
    pub fn gap_multiplier(&self, now: SimTime) -> f64 {
        let t = now.as_nanos() as f64 / self.period.as_nanos().max(1) as f64;
        let c = (std::f64::consts::PI * t).cos();
        1.0 + (self.off_peak_factor - 1.0) * c * c
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1,
            has_macro: true,
            has_micro: true,
            rsmc_enabled: true,
            notify_cn: true,
            mip_only: false,
            handoff_kind: HandoffKind::default_semisoft(),
            factors: crate::handoff::HandoffFactors::all(),
            decision: crate::handoff::DecisionConfig::default(),
            cip_timers: CipTimers::default(),
            route_update_period: None,
            move_sample: SimDuration::from_millis(200),
            location_period: SimDuration::from_secs(2),
            table_lifetime: SimDuration::from_secs(6),
            air_delay: SimDuration::from_millis(2),
            retune_delay: SimDuration::from_millis(10),
            scheduler: SchedulerKind::Calendar,
            dispatch_batching: false,
            aggregate_qos: false,
            load_curve: None,
            idle_camping: false,
        }
    }
}

/// Per-domain protocol state.
#[derive(Debug)]
pub(crate) struct DomainState {
    pub(crate) id: DomainId,
    pub(crate) rsmc: Rsmc,
    pub(crate) fa: ForeignAgent,
    pub(crate) cip: CipNetwork,
    pub(crate) semisoft: SemisoftController,
    pub(crate) rsmc_node: NodeId,
    /// False while a fault-injected RSMC crash is outstanding: the dead
    /// RSMC answers no control traffic and tracks no locations until the
    /// standby takes over (plain gateway routing keeps working — the
    /// fault is control-plane death, not a line cut).
    pub(crate) rsmc_alive: bool,
}

/// An in-flight handoff (decided, radio not yet retuned).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingAttach {
    target: CellId,
    old: Option<CellId>,
    htype: Option<HandoffType>,
    decided_at: SimTime,
    /// False when the node is camping (idle, `idle_camping` worlds): the
    /// attach completes without occupying a traffic channel.
    holds_channel: bool,
}

/// Latency measurement awaiting its completion signal.
#[derive(Debug, Clone, Copy)]
struct PendingLatency {
    htype: HandoffType,
    decided_at: SimTime,
}

enum FlowGen {
    Cbr(Cbr),
    Vbr(OnOffVbr),
    Web(ParetoWeb),
}

impl FlowGen {
    fn next(&mut self, rng: &mut RngStream) -> mtnet_traffic::Arrival {
        match self {
            FlowGen::Cbr(g) => g.next_arrival(rng),
            FlowGen::Vbr(g) => g.next_arrival(rng),
            FlowGen::Web(g) => g.next_arrival(rng),
        }
    }
}

struct FlowSim {
    flow: FlowId,
    /// Generation-checked reference to the flow's mobile node.
    mn: MnHandle,
    gen: FlowGen,
    qos: FlowQos,
    seq: u64,
    rng: RngStream,
}

/// Simulation events.
#[derive(Debug)]
pub enum Ev {
    /// A packet arrives at a wired node (`from` is the upstream node;
    /// `None` marks packets entering from the air interface or originated
    /// locally).
    Pkt {
        /// Node the packet arrived at.
        node: NodeId,
        /// Upstream node, if any.
        from: Option<NodeId>,
        /// The packet: an 8-byte generational handle into the world's
        /// [`PacketArena`] — events stay small and packet lifecycles
        /// never touch the allocator.
        pkt: PacketRef,
    },
    /// A downlink air transmission reaches a mobile node.
    AirDown {
        /// Destination node.
        mn: MnId,
        /// Transmitting cell.
        cell: CellId,
        /// The packet (an arena handle, as in [`Ev::Pkt`]).
        pkt: PacketRef,
    },
    /// Periodic mobility measurement for one node.
    MoveSample(MnId),
    /// Periodic uplink maintenance (route/paging updates, MIP upkeep).
    Uplink(MnId),
    /// Periodic Location Message (§3.1).
    LocationTick(MnId),
    /// Next packet of a flow.
    FlowNext(usize),
    /// Radio retune completes; the node attaches to its pending target.
    Attach(MnId),
    /// Periodic cache sweep.
    Sweep,
    /// A scheduled fault transition fires: the index into the world's
    /// compiled fault plan (see `World::install_fault_plan`).
    Fault(usize),
}

/// One compiled fault transition. Spec-level schedules (windows, flap
/// series) expand into these concrete, time-sorted edges at build time,
/// once cell ids, link ids and domain indices exist.
#[derive(Debug, Clone)]
pub(crate) enum FaultAction {
    /// Administrative BS outage edge.
    Cell {
        /// Affected cell.
        cell: CellId,
        /// True takes the cell down, false restores it.
        down: bool,
    },
    /// Wired-uplink flap edge: both directions of the duplex pair.
    Link {
        /// Internet → RSMC direction.
        fwd: LinkId,
        /// RSMC → Internet direction.
        rev: LinkId,
        /// True downs the pair, false restores it.
        down: bool,
    },
    /// RSMC crash: the control plane dies and its soft state flushes.
    RsmcKill {
        /// Domain index.
        domain: usize,
    },
    /// Standby RSMC takeover: the control plane returns, cold.
    RsmcTakeover {
        /// Domain index.
        domain: usize,
    },
    /// Satellite eclipse edge over every satellite-tier cell.
    Eclipse {
        /// The satellite cells (captured at compile time).
        cells: Vec<CellId>,
        /// True starts the eclipse, false ends it.
        down: bool,
    },
}

/// The simulation world (see module docs).
pub struct World {
    pub(crate) cfg: WorldConfig,
    pub(crate) topo: Topology,
    /// Min-delay route cache: one Dijkstra per source per topology
    /// generation, O(1) next hops afterwards (replaces the per-node
    /// longest-prefix routing tables on the wired fast path).
    pub(crate) routes: RouteCache,
    /// Prefix-owned address space (home network, per-domain subnets),
    /// sorted longest prefix first: destinations that are not topology
    /// nodes route toward the owner of the longest containing prefix
    /// with a usable route. The hot path reads only the derived
    /// `prefix_probe`; the raw list feeds the routing-table equivalence
    /// tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) prefixes: Vec<(Prefix, NodeId)>,
    /// Per-length masked maps over `prefixes`, longest length first:
    /// `network → owner`. Equal-length prefixes are disjoint, so probing
    /// one map per distinct length in descending order visits containing
    /// prefixes in exactly the sorted scan's order — O(distinct lengths)
    /// per lookup instead of O(prefix count) (249 entries in a metro
    /// world, walked per forwarded hop).
    pub(crate) prefix_probe: Vec<(u32, FxHashMap<u32, NodeId>)>,
    pub(crate) cells: CellMap,
    /// BS node of each cell, indexed densely by cell id (per-packet hot).
    pub(crate) cell_node: Vec<Option<NodeId>>,
    /// Cell served by each BS node, indexed densely by node id.
    pub(crate) node_cell: Vec<Option<CellId>>,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) locdir: LocationDirectory,
    pub(crate) domains: Vec<DomainState>,
    /// Domain of each cell, indexed densely by cell id.
    pub(crate) cell_domain: Vec<Option<usize>>,
    /// Domain of each access-network node, indexed densely by node id.
    pub(crate) node_domain: Vec<Option<usize>>,
    /// RSMC address → domain index (the `iter().position()` scans this
    /// replaces ran per RSMC-addressed packet).
    pub(crate) rsmc_addr_domain: FxHashMap<Addr, usize>,
    /// RSMC/gateway node → domain index.
    pub(crate) rsmc_node_domain: FxHashMap<NodeId, usize>,
    pub(crate) ha: HomeAgent,
    pub(crate) ha_node: NodeId,
    pub(crate) cn_node: NodeId,
    pub(crate) cn_addr: Addr,
    pub(crate) mnld: Mnld,
    /// Pure-Mobile-IP mode: one FA per BS.
    pub(crate) bs_fas: FxHashMap<CellId, ForeignAgent>,
    /// The mobile-node population, stored structure-of-arrays (one
    /// column per field, indexed by [`MnId`]); home addresses are
    /// arithmetic (`mn::home_addr`), so the per-hop `mn_of` probe is a
    /// few integer ops with no side index.
    pub(crate) mns: MnTable,
    flows: Vec<FlowSim>,
    /// FlowId → index into `flows`, so per-packet delivery is O(1).
    pub(crate) flow_index: FxHashMap<FlowId, usize>,
    /// CN's route-optimization state: the RSMC to tunnel to, a dense
    /// column indexed by [`MnId`] (a node the CN was never told about
    /// costs one `None`).
    cn_route: Vec<Option<Addr>>,
    engine: HandoffEngine,
    pending_latency: FxHashMap<MnId, PendingLatency>,
    next_packet_id: u64,
    /// Generational slab holding every packet in flight; events carry
    /// [`PacketRef`] handles into it. Allocation-free per packet once the
    /// slab has grown to the world's steady-state in-flight count.
    pub(crate) arena: PacketArena,
    /// Reused measurement buffer: one allocation for the whole run
    /// instead of one per mobility sample.
    measure_scratch: Vec<Measurement>,
    /// Reused handoff-candidate buffer (same lifecycle as
    /// `measure_scratch`).
    candidate_scratch: Vec<Candidate>,
    /// Compiled fault plan, time-sorted; `Ev::Fault(i)` indexes into it.
    /// Empty unless the spec's `faults` section scheduled something.
    pub(crate) fault_plan: Vec<(SimTime, FaultAction)>,
    /// Injected faults currently active (down edges applied minus restore
    /// edges applied); data drops while nonzero count as outage losses.
    active_faults: u32,
    /// Restore instants awaiting their first successful data delivery —
    /// the recovery-latency measurement points.
    pending_recovery: Vec<SimTime>,
    /// Sharded-execution context: `None` under the sequential engine,
    /// `Some` on a replica run by [`shard::run_sharded`] (switches
    /// `forward_wired` into diverting boundary crossings to the outbox).
    pub(crate) shard: Option<shard::ShardCtx>,
    /// Executions of replicated event classes (sweeps, fault edges) —
    /// the duplicates the sharded merge subtracts from the event count.
    /// Maintained (cheaply) under the sequential engine too, but unused
    /// there.
    pub(crate) replicated_events: u64,
    pub(crate) report: SimReport,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("domains", &self.domains.len())
            .field("cells", &self.cells.len())
            .field("mns", &self.mns.len())
            .field("flows", &self.flows.len())
            .finish()
    }
}

impl World {
    /// Wireless transmission time of `bytes` in `cell`: base air latency,
    /// serialization at the tier's rate, plus orbital propagation for the
    /// satellite tier (altitude / c).
    fn air_time(&self, cell: CellId, bytes: u32) -> SimDuration {
        let (rate, altitude) = self.cells.cell(cell).map_or((768_000, 0.0), |c| {
            (c.kind().data_rate_bps(), c.kind().altitude_m())
        });
        // Terrestrial cells skip the orbital-propagation term entirely
        // (`from_secs_f64(0.0)` is exactly zero, so the shortcut changes
        // no bits — it just spares a rounding per packet).
        let orbit = if altitude == 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(altitude / 299_792_458.0)
        };
        self.cfg.air_delay
            + SimDuration::from_secs_f64(f64::from(bytes) * 8.0 / rate as f64)
            + orbit
    }

    fn alloc_packet(
        &mut self,
        flow: FlowId,
        seq: u64,
        src: Addr,
        dst: Addr,
        bytes: u32,
        now: SimTime,
        payload: Payload,
    ) -> PacketRef {
        self.next_packet_id += 1;
        self.arena.alloc(
            PacketId(self.next_packet_id),
            flow,
            seq,
            src,
            dst,
            bytes,
            now,
            payload,
        )
    }

    /// Sends a control packet from a wired node.
    fn send_control(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        from_node: NodeId,
        src: Addr,
        dst: Addr,
        payload: Payload,
    ) {
        let bytes = payload.control_size_bytes();
        let pkt = self.alloc_packet(FlowId(0), 0, src, dst, bytes, ctx.now(), payload);
        self.report.signaling.control_bytes += u64::from(self.arena.get(pkt).wire_bytes());
        self.forward_wired(ctx, from_node, pkt);
    }

    /// Next wired hop out of `node` toward `dst`: exact node addresses
    /// route directly (the old host routes), other addresses via their
    /// containing prefixes' owners, longest first (the old prefix
    /// routes). Both resolve through the [`RouteCache`], so the per-hop
    /// cost is a couple of map lookups instead of a longest-prefix scan —
    /// with hop choices identical to the Dijkstra-built routing tables
    /// this replaces: the retired tables skipped a prefix whose owner was
    /// `node` itself or unreachable, letting *shorter* matching prefixes
    /// answer, so the walk here continues past such entries rather than
    /// giving up at the longest match (`prefixes` is sorted
    /// longest-first by `WorldBuilder::build`).
    fn wired_next_hop(&mut self, node: NodeId, dst: Addr) -> Option<NodeId> {
        if let Some(target) = self.topo.node_by_addr(dst) {
            if let Some(hop) = self.routes.next_hop(&self.topo, node, target) {
                return Some(hop);
            }
            // Unreachable host routes fell through to prefixes in the old
            // tables; preserve that.
        }
        for (mask, owners) in &self.prefix_probe {
            let Some(&owner) = owners.get(&(dst.0 & mask)) else {
                continue;
            };
            if owner == node {
                continue; // a prefix owner holds no route to its own space
            }
            if let Some(hop) = self.routes.next_hop(&self.topo, node, owner) {
                return Some(hop);
            }
        }
        None
    }

    /// Forwards a packet out of `node` toward its routing destination over
    /// the wired topology.
    fn forward_wired(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId, pkt: PacketRef) {
        let (dst, bytes, is_data) = {
            let p = self.arena.get(pkt);
            (p.routing_dst(), p.wire_bytes(), p.payload.is_data())
        };
        let Some(next) = self.wired_next_hop(node, dst) else {
            if is_data {
                self.count_data_drop(DropCause::NoRoute);
            }
            self.arena.free(pkt);
            return;
        };
        let Some(link) = self.topo.link_between(node, next) else {
            if is_data {
                self.count_data_drop(DropCause::NoRoute);
            }
            self.arena.free(pkt);
            return;
        };
        match self
            .topo
            .link_mut(link)
            .expect("link exists")
            .transmit(ctx.now(), bytes)
        {
            TransmitOutcome::Delivered { at } => {
                self.arena.get_mut(pkt).record_hop();
                // Sharded execution: a hop to a node another shard owns
                // leaves this replica entirely — the packet travels by
                // value through the outbox and lands in the owner's
                // queue at the next window edge (see `shard`).
                if self.shard.as_ref().is_some_and(|s| s.diverts(next)) {
                    let packet = self.arena.take(pkt);
                    self.shard
                        .as_mut()
                        .expect("checked above")
                        .outbox
                        .push(shard::Crossing {
                            at,
                            node: next,
                            from: node,
                            packet,
                        });
                    return;
                }
                ctx.schedule_at(
                    at,
                    Ev::Pkt {
                        node: next,
                        from: Some(node),
                        pkt,
                    },
                );
            }
            TransmitOutcome::Dropped => {
                if is_data {
                    self.count_data_drop(DropCause::QueueOverflow);
                }
                self.arena.free(pkt);
            }
        }
    }

    /// Transmits a packet over the air from `cell` toward `mn`.
    fn air_down(&mut self, ctx: &mut Context<'_, Ev>, cell: CellId, mn: MnId, pkt: PacketRef) {
        let delay = self.air_time(cell, self.arena.get(pkt).wire_bytes());
        ctx.schedule_at(ctx.now() + delay, Ev::AirDown { mn, cell, pkt });
    }

    /// Transmits an uplink packet from `mn` via its serving BS; the packet
    /// enters the wired world at the BS node with `from: None`.
    fn air_up(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId, payload: Payload, dst: Addr) {
        let Some(cell) = self.mns.attached[mn.0 as usize] else {
            return;
        };
        let src = self.mns.home[mn.0 as usize];
        let bytes = payload.control_size_bytes();
        let pkt = self.alloc_packet(FlowId(0), 0, src, dst, bytes, ctx.now(), payload);
        let wire = self.arena.get(pkt).wire_bytes();
        self.report.signaling.control_bytes += u64::from(wire);
        let delay = self.air_time(cell, wire);
        let bs = self.node_of_cell(cell);
        ctx.schedule_at(
            ctx.now() + delay,
            Ev::Pkt {
                node: bs,
                from: None,
                pkt,
            },
        );
    }

    fn domain_idx_of_cell(&self, cell: CellId) -> Option<usize> {
        self.cell_domain.get(cell.0 as usize).copied().flatten()
    }

    /// Domain index of an access-network node, if it belongs to one.
    fn domain_idx_of_node(&self, node: NodeId) -> Option<usize> {
        self.node_domain.get(node.0 as usize).copied().flatten()
    }

    /// The cell served by a BS node, if it hosts one.
    fn cell_of_node(&self, node: NodeId) -> Option<CellId> {
        self.node_cell.get(node.0 as usize).copied().flatten()
    }

    /// The BS node of a cell, if it has a radio deployment.
    fn bs_of_cell(&self, cell: CellId) -> Option<NodeId> {
        self.cell_node.get(cell.0 as usize).copied().flatten()
    }

    /// The BS node of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no radio deployment.
    fn node_of_cell(&self, cell: CellId) -> NodeId {
        self.bs_of_cell(cell).expect("cell has a BS node")
    }

    /// The MN id owning a (home) address. Probed multiple times per
    /// forwarded packet; home addresses are allocated arithmetically
    /// (`mn::home_addr`), so the probe is pure integer arithmetic with
    /// no per-world index.
    fn mn_of(&self, addr: Addr) -> Option<MnId> {
        mn::mn_of_home(addr, self.mns.len())
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Compiles the spec's fault schedules into the time-sorted plan
    /// `World::run` turns into `Ev::Fault` events.
    ///
    /// Runs after the builder so the schedules resolve against concrete
    /// ids: cell outages to [`CellId`]s, link flaps to the domain's
    /// Internet ↔ RSMC duplex [`LinkId`] pair, eclipses to the built
    /// satellite-cell set. Flap jitter draws come from a child stream of
    /// the world seed, so the expanded plan is a pure function of
    /// `(spec, master seed)` — the determinism contract extends to
    /// faults unchanged.
    ///
    /// # Panics
    ///
    /// Panics if a cell outage names a cell the world never built (domain
    /// indices are range-checked earlier by spec validation).
    pub(crate) fn install_fault_plan(&mut self, faults: &crate::spec::FaultSpec) {
        if faults.is_empty() {
            return;
        }
        fn at(secs: f64) -> SimTime {
            SimTime::ZERO + SimDuration::from_secs_f64(secs)
        }
        let mut plan: Vec<(SimTime, FaultAction)> = Vec::new();
        for o in &faults.cell_outages {
            let cell = CellId(o.cell);
            assert!(
                self.cells.cell(cell).is_some(),
                "fault.cell_outages names unknown cell {} (world has {})",
                o.cell,
                self.cells.len()
            );
            plan.push((at(o.start_s), FaultAction::Cell { cell, down: true }));
            plan.push((at(o.end_s), FaultAction::Cell { cell, down: false }));
        }
        let jitter_root = RngStream::from_seed(self.cfg.seed);
        for (i, f) in faults.link_flaps.iter().enumerate() {
            let rsmc_node = self.domains[f.domain as usize].rsmc_node;
            let internet = self
                .topo
                .node_by_addr("1.0.0.1".parse().expect("static addr"))
                .expect("internet node exists");
            let fwd = self
                .topo
                .link_between(internet, rsmc_node)
                .expect("domain uplink exists");
            let rev = self
                .topo
                .link_between(rsmc_node, internet)
                .expect("domain uplink exists");
            let mut rng = jitter_root.child(&format!("faults/flap{i}"));
            for k in 0..f.count {
                let base = f.start_s + f64::from(k) * f.period_s;
                // Jitter < period * min(duty, 1-duty) (spec-validated), so
                // down_k < up_k < down_{k+1} always: edges stay paired.
                let down_at = base + rng.next_f64() * f.jitter_s;
                let up_at = base + f.duty * f.period_s + rng.next_f64() * f.jitter_s;
                plan.push((
                    at(down_at),
                    FaultAction::Link {
                        fwd,
                        rev,
                        down: true,
                    },
                ));
                plan.push((
                    at(up_at),
                    FaultAction::Link {
                        fwd,
                        rev,
                        down: false,
                    },
                ));
            }
        }
        for r in &faults.rsmc_failovers {
            let domain = r.domain as usize;
            plan.push((at(r.at_s), FaultAction::RsmcKill { domain }));
            if let Some(t) = r.takeover_s {
                plan.push((at(r.at_s + t), FaultAction::RsmcTakeover { domain }));
            }
        }
        if !faults.eclipses.is_empty() {
            let sats: Vec<CellId> = self
                .cells
                .cells()
                .filter(|c| c.kind() == CellKind::Satellite)
                .map(|c| c.id())
                .collect();
            for e in &faults.eclipses {
                plan.push((
                    at(e.start_s),
                    FaultAction::Eclipse {
                        cells: sats.clone(),
                        down: true,
                    },
                ));
                plan.push((
                    at(e.end_s),
                    FaultAction::Eclipse {
                        cells: sats.clone(),
                        down: false,
                    },
                ));
            }
        }
        // Stable sort: same-instant edges apply in category order
        // (cells, links, failovers, eclipses) — fixed, so deterministic.
        plan.sort_by_key(|(t, _)| *t);
        self.fault_plan = plan;
    }

    /// Applies one compiled fault edge. No-op edges (an already-down cell
    /// downed again by an overlapping window, an eclipse with no
    /// satellites) count nothing, which keeps the active-fault balance
    /// and the quiet-report guarantee exact.
    fn handle_fault(&mut self, ctx: &mut Context<'_, Ev>, idx: usize) {
        // Fault edges are replicated on every shard (see `shard`).
        self.replicated_events += 1;
        let now = ctx.now();
        let action = self.fault_plan[idx].1.clone();
        match action {
            FaultAction::Cell { cell, down } => {
                if self.cells.set_cell_down(cell, down) {
                    self.report.faults.cell_transitions += 1;
                    self.note_fault_edge(now, down);
                }
            }
            FaultAction::Link { fwd, rev, down } => {
                // `set_link_up` bumps the topology generation on every
                // applied transition — including the restore, which is
                // what evicts route-cache trees resolved mid-outage.
                let a = self.topo.set_link_up(fwd, !down).expect("known link");
                let b = self.topo.set_link_up(rev, !down).expect("known link");
                if a || b {
                    self.report.faults.link_transitions += 1;
                    self.note_fault_edge(now, down);
                }
            }
            FaultAction::RsmcKill { domain } => {
                if self.domains[domain].rsmc_alive {
                    self.domains[domain].rsmc_alive = false;
                    self.domains[domain].rsmc.flush();
                    self.report.faults.rsmc_kills += 1;
                    self.note_fault_edge(now, true);
                }
            }
            FaultAction::RsmcTakeover { domain } => {
                if !self.domains[domain].rsmc_alive {
                    self.domains[domain].rsmc_alive = true;
                    self.report.faults.rsmc_takeovers += 1;
                    self.note_fault_edge(now, false);
                }
            }
            FaultAction::Eclipse { cells, down } => {
                let mut changed = false;
                for cell in cells {
                    changed |= self.cells.set_cell_down(cell, down);
                }
                if changed {
                    self.report.faults.eclipse_transitions += 1;
                    self.note_fault_edge(now, down);
                }
            }
        }
    }

    /// Bookkeeping common to every applied fault edge: down edges open
    /// the outage-attribution window, restore edges close it and arm a
    /// recovery-latency measurement.
    fn note_fault_edge(&mut self, now: SimTime, down: bool) {
        if down {
            self.active_faults += 1;
        } else {
            self.active_faults = self.active_faults.saturating_sub(1);
            self.pending_recovery.push(now);
        }
    }

    /// Records a data-packet drop, attributing it to the open fault
    /// window when one exists. Every drop in the world routes through
    /// here (or [`World::drop_packet`], which calls it).
    fn count_data_drop(&mut self, cause: DropCause) {
        if self.active_faults > 0 {
            self.report.faults.outage_drops += 1;
        }
        self.report.count_drop(cause);
    }

    // ------------------------------------------------------------------
    // Packet handling
    // ------------------------------------------------------------------

    fn handle_pkt(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        from: Option<NodeId>,
        pkt: PacketRef,
    ) {
        let node_addr = self.topo.addr_of(node);
        let node_didx = self.domain_idx_of_node(node);

        // 1. Tunnel exit?
        {
            let p = self.arena.get_mut(pkt);
            while p.encap.last().is_some_and(|h| h.outer_dst == node_addr) {
                p.decapsulate();
            }
        }
        let (dst, payload) = {
            let p = self.arena.get(pkt);
            (p.dst, p.payload)
        };

        // 2. Cellular IP uplink control climbing the tree refreshes caches
        //    at every node it passes — including the gateway it is
        //    addressed to, so this check precedes local consumption.
        if let Some(didx) = node_didx {
            if !self.cfg.mip_only {
                if let Payload::Cip(c) = payload {
                    self.handle_cip_climb(ctx, didx, node, from, c, pkt);
                    return;
                }
            }
        }

        // 3. Packet addressed to this node itself: protocol processing.
        if dst == node_addr {
            self.consume_at_node(ctx, node, pkt);
            return;
        }

        // 4. Packet for a mobile node inside an access network this node
        //    belongs to: Cellular IP downlink / uplink handling.
        if let Some(didx) = node_didx {
            if !self.cfg.mip_only {
                if self.mn_of(dst).is_some() {
                    self.forward_downlink(ctx, didx, node, pkt);
                    return;
                }
            } else if let Some(mn) = self.mn_of(dst) {
                // Pure Mobile IP: the BS delivers only to its own radio.
                let Some(cell) = self.cell_of_node(node) else {
                    self.forward_wired(ctx, node, pkt);
                    return;
                };
                if self.mns.attached[mn.0 as usize] == Some(cell) {
                    self.air_down(ctx, cell, mn, pkt);
                } else {
                    if payload.is_data() {
                        self.count_data_drop(DropCause::NoRoute);
                    }
                    self.arena.free(pkt);
                }
                return;
            }
        }

        // 5. Plain wired forwarding.
        self.forward_wired(ctx, node, pkt);
    }

    /// Control processing for packets addressed to an infrastructure node.
    fn consume_at_node(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId, pkt: PacketRef) {
        let now = ctx.now();
        // The packet ends here in every branch; only its payload (a small
        // `Copy` enum) is consulted. Release the slot up front.
        let payload = self.arena.get(pkt).payload;
        self.arena.free(pkt);
        if node == self.ha_node {
            match payload {
                Payload::Mip(MipMessage::Request(req)) => {
                    let reply = self.ha.process_registration(&req, now);
                    self.report.signaling.mip_requests += 1;
                    let ha_addr = self.ha.addr();
                    self.send_control(
                        ctx,
                        node,
                        ha_addr,
                        req.coa,
                        Payload::Mip(MipMessage::Reply(reply)),
                    );
                }
                Payload::Mt(MtMessage::RsmcNotify { mn, rsmc }) => {
                    // §4: the notification refreshes the HA's view without
                    // waiting for the full Mobile IP registration.
                    let synthetic = RegistrationRequest {
                        mn_home: mn,
                        coa: rsmc,
                        ha: self.ha.addr(),
                        lifetime: SimDuration::from_secs(300),
                        id: 0,
                    };
                    let _ = self.ha.process_registration(&synthetic, now);
                    if let (Some(didx), Some(mnid)) =
                        (self.rsmc_addr_domain.get(&rsmc).copied(), self.mn_of(mn))
                    {
                        let dom = self.domains[didx].id;
                        self.mnld.update(mnid, dom, rsmc, now);
                    }
                }
                Payload::Mt(MtMessage::UpdateLocation { mn, new_cell }) => {
                    // Fig 3.3: the inter-domain (different upper) update
                    // travels via the home network, which records the move
                    // and "replies new location information to the
                    // original domain".
                    let mnid = self.mn_of(mn);
                    let prev_rsmc = mnid.and_then(|id| self.mnld.peek(id)).map(|e| e.rsmc);
                    if let (Some(didx), Some(mnid)) = (self.domain_idx_of_cell(new_cell), mnid) {
                        let new_rsmc = self.domains[didx].rsmc.addr();
                        let dom = self.domains[didx].id;
                        self.mnld.update(mnid, dom, new_rsmc, now);
                        let synthetic = RegistrationRequest {
                            mn_home: mn,
                            coa: new_rsmc,
                            ha: self.ha.addr(),
                            lifetime: SimDuration::from_secs(300),
                            id: 0,
                        };
                        let _ = self.ha.process_registration(&synthetic, now);
                        if let Some(prev) = prev_rsmc.filter(|&p| p != new_rsmc) {
                            let ha_addr = self.ha.addr();
                            self.report.signaling.update_messages += 1;
                            self.send_control(
                                ctx,
                                node,
                                ha_addr,
                                prev,
                                Payload::Mt(MtMessage::UpdateLocation { mn, new_cell }),
                            );
                        }
                    }
                }
                _ => {}
            }
            return;
        }
        if node == self.cn_node {
            if let Payload::Mt(MtMessage::RsmcNotify { mn, rsmc }) = payload {
                if let Some(mnid) = self.mn_of(mn) {
                    self.cn_route[mnid.0 as usize] = Some(rsmc);
                }
            }
            return;
        }
        // RSMC / gateway processing.
        if let Some(didx) = self.rsmc_node_domain.get(&node).copied() {
            if !self.domains[didx].rsmc_alive {
                // Crashed control plane: the box forwards as a plain
                // gateway (handled before we got here) but answers no
                // signaling until the standby takes over.
                return;
            }
            match payload {
                Payload::Mip(MipMessage::Request(req)) => {
                    // FA leg: relay to the HA or deny locally.
                    let result = self.domains[didx].fa.relay_registration(&req, now);
                    let fa_addr = self.domains[didx].fa.addr();
                    match result {
                        Ok(relayed) => {
                            self.send_control(
                                ctx,
                                node,
                                fa_addr,
                                relayed.ha,
                                Payload::Mip(MipMessage::Request(relayed)),
                            );
                        }
                        Err(denial) => {
                            self.deliver_control_to_mn(
                                ctx,
                                didx,
                                denial.mn_home,
                                Payload::Mip(MipMessage::Reply(denial)),
                            );
                        }
                    }
                }
                Payload::Mip(MipMessage::Reply(reply)) => {
                    self.report.signaling.mip_replies += 1;
                    let reply = self.domains[didx].fa.process_reply(&reply, now);
                    self.deliver_control_to_mn(
                        ctx,
                        didx,
                        reply.mn_home,
                        Payload::Mip(MipMessage::Reply(reply)),
                    );
                }
                Payload::Mt(MtMessage::UpdateLocation { mn, new_cell }) => {
                    // This RSMC is the *old* domain of an inter-domain
                    // handoff: install a forwarding entry so in-flight
                    // packets chase the node to its new domain, and keep
                    // the record "a while until MN has completed handoff"
                    // (Fig 3.3).
                    if let Some(new_didx) = self.domain_idx_of_cell(new_cell) {
                        let new_rsmc = self.domains[new_didx].rsmc.addr();
                        if new_rsmc != self.domains[didx].rsmc.addr() {
                            self.domains[didx].fa.install_forward(mn, new_rsmc, now);
                        }
                    }
                    if let Some(mnid) = self.mn_of(mn) {
                        self.complete_latency_if(mnid, now, |t| t.is_inter_domain());
                    }
                }
                _ => {}
            }
            return;
        }
        // Pure Mobile IP: a BS acting as FA.
        if self.cfg.mip_only {
            if let Some(cell) = self.cell_of_node(node) {
                match payload {
                    Payload::Mip(MipMessage::Request(req)) => {
                        let result = self
                            .bs_fas
                            .get_mut(&cell)
                            .expect("FA exists per BS in mip-only mode")
                            .relay_registration(&req, now);
                        let fa_addr = self.topo.addr_of(node);
                        match result {
                            Ok(relayed) => self.send_control(
                                ctx,
                                node,
                                fa_addr,
                                relayed.ha,
                                Payload::Mip(MipMessage::Request(relayed)),
                            ),
                            Err(denial) => {
                                if let Some(mn) = self.mn_of(denial.mn_home) {
                                    let p = self.alloc_packet(
                                        FlowId(0),
                                        0,
                                        fa_addr,
                                        denial.mn_home,
                                        RegistrationReply::SIZE_BYTES,
                                        now,
                                        Payload::Mip(MipMessage::Reply(denial)),
                                    );
                                    self.air_down(ctx, cell, mn, p);
                                }
                            }
                        }
                    }
                    Payload::Mip(MipMessage::Reply(reply)) => {
                        self.report.signaling.mip_replies += 1;
                        let reply = self
                            .bs_fas
                            .get_mut(&cell)
                            .expect("FA exists")
                            .process_reply(&reply, now);
                        if let Some(mn) = self.mn_of(reply.mn_home) {
                            let src = self.topo.addr_of(node);
                            let p = self.alloc_packet(
                                FlowId(0),
                                0,
                                src,
                                reply.mn_home,
                                RegistrationReply::SIZE_BYTES,
                                now,
                                Payload::Mip(MipMessage::Reply(reply)),
                            );
                            self.air_down(ctx, cell, mn, p);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Sends a control message down a domain's access network to an MN.
    fn deliver_control_to_mn(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        didx: usize,
        mn_addr: Addr,
        payload: Payload,
    ) {
        let node = self.domains[didx].rsmc_node;
        let src = self.topo.addr_of(node);
        let bytes = payload.control_size_bytes();
        let pkt = self.alloc_packet(FlowId(0), 0, src, mn_addr, bytes, ctx.now(), payload);
        self.forward_downlink(ctx, didx, node, pkt);
    }

    /// Frees a packet that ends its life here, counting the drop when it
    /// carried application data.
    fn drop_packet(&mut self, pkt: PacketRef, cause: DropCause) {
        if self.arena.get(pkt).payload.is_data() {
            self.count_data_drop(cause);
        }
        self.arena.free(pkt);
    }

    /// Cellular IP uplink control (route/paging/semisoft updates) climbing
    /// from `node` toward the gateway, refreshing caches hop by hop.
    fn handle_cip_climb(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        didx: usize,
        node: NodeId,
        from: Option<NodeId>,
        control: CipControl,
        pkt: PacketRef,
    ) {
        let now = ctx.now();
        let came_from = from.unwrap_or(node);
        let gateway = self.domains[didx].cip.tree().gateway();
        match control {
            CipControl::RouteUpdate { mn, .. } | CipControl::Semisoft { mn } => {
                self.domains[didx]
                    .cip
                    .refresh_route_at(node, mn, came_from, now);
                // Semisoft: opening the bicast window when the update
                // passes the crossover between old and new attachments.
                if let CipControl::Semisoft { mn } = control {
                    if let Some(mnid) = self.mn_of(mn) {
                        let i = mnid.0 as usize;
                        let (old, target) =
                            (self.mns.attached[i], self.mns.pending[i].map(|p| p.target));
                        if let (Some(old), Some(target)) = (old, target) {
                            let old_node = self.node_of_cell(old);
                            let new_node = self.node_of_cell(target);
                            let tree = self.domains[didx].cip.tree();
                            if tree.contains(old_node)
                                && tree.contains(new_node)
                                && tree.crossover(old_node, new_node) == node
                            {
                                if let HandoffKind::Semisoft { delay } = self.cfg.handoff_kind {
                                    self.domains[didx]
                                        .semisoft
                                        .begin(mn, old_node, new_node, now, delay);
                                }
                            }
                        }
                    }
                }
                if node == gateway {
                    self.arena.free(pkt);
                    self.on_gateway_route_update(ctx, didx, mn, now);
                    // Intra-domain handoff completes when the repair
                    // reaches the gateway.
                    if let Some(mnid) = self.mn_of(mn) {
                        self.complete_latency_if(mnid, now, |t| !t.is_inter_domain());
                    }
                    return;
                }
            }
            CipControl::PagingUpdate { mn } => {
                self.domains[didx]
                    .cip
                    .refresh_paging_at(node, mn, came_from, now);
                if node == gateway {
                    self.arena.free(pkt);
                    return;
                }
            }
        }
        // Climb to the parent.
        let Some(parent) = self.domains[didx].cip.tree().parent(node) else {
            self.arena.free(pkt);
            return;
        };
        let Some(link) = self.topo.link_between(node, parent) else {
            self.arena.free(pkt);
            return;
        };
        let bytes = self.arena.get(pkt).wire_bytes();
        match self
            .topo
            .link_mut(link)
            .expect("link exists")
            .transmit(now, bytes)
        {
            TransmitOutcome::Delivered { at } => {
                ctx.schedule_at(
                    at,
                    Ev::Pkt {
                        node: parent,
                        from: Some(node),
                        pkt,
                    },
                );
            }
            TransmitOutcome::Dropped => self.arena.free(pkt),
        }
    }

    /// Gateway-level route-update processing: RSMC location refresh and
    /// HA/CN notifications.
    fn on_gateway_route_update(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        didx: usize,
        mn: Addr,
        now: SimTime,
    ) {
        if !self.cfg.rsmc_enabled || !self.domains[didx].rsmc_alive {
            return;
        }
        let Some(cell) = self.domains[didx]
            .cip
            .locate(mn, now)
            .and_then(|n| self.cell_of_node(n))
        else {
            return;
        };
        let targets = if self.cfg.notify_cn { 2 } else { 1 };
        let notifications = self.domains[didx]
            .rsmc
            .on_route_update(mn, cell, now, targets);
        if notifications.is_empty() {
            return;
        }
        self.report.signaling.rsmc_notifications += notifications.len() as u64;
        let rsmc_node = self.domains[didx].rsmc_node;
        let rsmc_addr = self.domains[didx].rsmc.addr();
        let ha_addr = self.ha.addr();
        self.send_control(
            ctx,
            rsmc_node,
            rsmc_addr,
            ha_addr,
            Payload::Mt(MtMessage::RsmcNotify {
                mn,
                rsmc: rsmc_addr,
            }),
        );
        if self.cfg.notify_cn {
            let cn = self.cn_addr;
            self.send_control(
                ctx,
                rsmc_node,
                rsmc_addr,
                cn,
                Payload::Mt(MtMessage::RsmcNotify {
                    mn,
                    rsmc: rsmc_addr,
                }),
            );
        }
    }

    /// Downlink forwarding inside an access network (gateway or BS).
    fn forward_downlink(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        didx: usize,
        node: NodeId,
        pkt: PacketRef,
    ) {
        let now = ctx.now();
        let mn_addr = self.arena.get(pkt).dst;
        let gateway = self.domains[didx].cip.tree().gateway();
        // A departed visitor with a forwarding entry: re-tunnel toward the
        // new domain instead of descending a dead branch (Fig 3.3's "keep
        // the record a while until MN has completed handoff").
        if node == gateway {
            if let Some(coa) = self.domains[didx].fa.forward_endpoint(mn_addr, now) {
                if coa != self.domains[didx].rsmc.addr() {
                    let own = self.domains[didx].rsmc.addr();
                    self.arena
                        .get_mut(pkt)
                        .encapsulate(own, coa, TunnelKind::SmoothHandoff);
                    self.forward_wired(ctx, node, pkt);
                    return;
                }
            }
        }
        let next = self.domains[didx].cip.next_hop(node, mn_addr, now);
        match next {
            Some(n) if n == node => {
                // Attach BS: deliver over the air (plus semisoft bicast
                // handled at the crossover below).
                if let Some(cell) = self.cell_of_node(node) {
                    if let Some(mn) = self.mn_of(mn_addr) {
                        self.air_down(ctx, cell, mn, pkt);
                        return;
                    }
                }
                self.drop_packet(pkt, DropCause::NoRoute);
            }
            Some(child) => {
                // Semisoft bicast: if this node is the crossover of an open
                // window, duplicate toward the old branch too.
                if let Some((old_bs, new_bs)) =
                    self.domains[didx].semisoft.bicast_targets(mn_addr, now)
                {
                    let tree = self.domains[didx].cip.tree();
                    if tree.contains(old_bs)
                        && tree.contains(new_bs)
                        && tree.crossover(old_bs, new_bs) == node
                    {
                        if old_bs == node {
                            // The crossover *is* the old attach BS (the new
                            // cell chains under the old one): the "old
                            // branch" is this BS's own air interface.
                            if let (Some(cell), Some(mnid)) =
                                (self.cell_of_node(node), self.mn_of(mn_addr))
                            {
                                let copy = self.arena.duplicate(pkt);
                                self.air_down(ctx, cell, mnid, copy);
                            }
                        } else {
                            // The cache points to the new branch; the
                            // duplicate follows the tree toward the old BS.
                            // Parent walk from the old BS finds this node's
                            // child on that branch without materializing
                            // the path.
                            let mut toward_old = None;
                            let mut cur = old_bs;
                            while let Some(parent) = tree.parent(cur) {
                                if parent == node {
                                    toward_old = Some(cur);
                                    break;
                                }
                                cur = parent;
                            }
                            if let Some(toward_old) = toward_old {
                                if toward_old != child {
                                    let copy = self.arena.duplicate(pkt);
                                    self.transmit_to_child(ctx, node, toward_old, copy);
                                }
                            }
                        }
                    }
                }
                self.transmit_to_child(ctx, node, child, pkt);
            }
            None => {
                // No routing state at this node.
                if node == gateway {
                    self.gateway_rescue(ctx, didx, node, pkt);
                } else {
                    self.drop_packet(pkt, DropCause::NoRoute);
                }
            }
        }
    }

    fn transmit_to_child(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        child: NodeId,
        pkt: PacketRef,
    ) {
        let Some(link) = self.topo.link_between(node, child) else {
            self.drop_packet(pkt, DropCause::NoRoute);
            return;
        };
        let bytes = self.arena.get(pkt).wire_bytes();
        match self
            .topo
            .link_mut(link)
            .expect("link exists")
            .transmit(ctx.now(), bytes)
        {
            TransmitOutcome::Delivered { at } => {
                self.arena.get_mut(pkt).record_hop();
                ctx.schedule_at(
                    at,
                    Ev::Pkt {
                        node: child,
                        from: Some(node),
                        pkt,
                    },
                );
            }
            TransmitOutcome::Dropped => {
                self.drop_packet(pkt, DropCause::QueueOverflow);
            }
        }
    }

    /// Gateway fallback when routing caches miss: the RSMC's combined
    /// location cache (if enabled), then paging.
    fn gateway_rescue(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        didx: usize,
        node: NodeId,
        pkt: PacketRef,
    ) {
        let now = ctx.now();
        let mn_addr = self.arena.get(pkt).dst;
        if self.cfg.rsmc_enabled && self.domains[didx].rsmc_alive {
            if let Some(cell) = self.domains[didx].rsmc.locate(mn_addr, now) {
                // Source-routed forward down the tree, delivered straight
                // over the located BS's air interface (the BS's own
                // routing cache lapsed along with the gateway's).
                if let Some(bs_node) = self.bs_of_cell(cell) {
                    if self.domains[didx].cip.tree().contains(bs_node) {
                        self.domains[didx].rsmc.count_forwarded();
                        let hops = self.domains[didx].cip.tree().depth(bs_node) as u64;
                        let delay = SimDuration::from_millis(2).saturating_mul(hops.max(1))
                            + self.air_time(cell, self.arena.get(pkt).wire_bytes());
                        if let Some(mn) = self.mn_of(mn_addr) {
                            ctx.schedule_at(now + delay, Ev::AirDown { mn, cell, pkt });
                            return;
                        }
                    }
                }
            }
        }
        // Paging (idle nodes).
        let outcome = self.domains[didx].cip.page(mn_addr, now);
        self.report.signaling.page_messages += outcome.messages() as u64;
        match outcome {
            mtnet_cellularip::PageOutcome::Directed { bs, .. } => {
                let hops = self.domains[didx].cip.tree().depth(bs) as u64;
                let cell = self.cell_of_node(bs);
                if let (Some(cell), Some(mn)) = (cell, self.mn_of(mn_addr)) {
                    let delay = SimDuration::from_millis(2).saturating_mul(hops.max(1))
                        + self.air_time(cell, self.arena.get(pkt).wire_bytes());
                    ctx.schedule_at(now + delay, Ev::AirDown { mn, cell, pkt });
                } else {
                    self.drop_packet(pkt, DropCause::NoRoute);
                }
            }
            mtnet_cellularip::PageOutcome::Flooded { .. } => {
                self.drop_packet(pkt, DropCause::Paging);
                // A flooded page wakes the node: it answers with a route
                // update so subsequent packets flow.
                if let Some(mnid) = self.mn_of(mn_addr) {
                    if self.mns.attached[mnid.0 as usize].is_some() {
                        let dst = self.topo.addr_of(node);
                        self.report.signaling.route_updates += 1;
                        self.air_up(
                            ctx,
                            mnid,
                            Payload::Cip(CipControl::RouteUpdate {
                                mn: mn_addr,
                                came_from_bs: true,
                            }),
                            dst,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Air interface
    // ------------------------------------------------------------------

    fn handle_air_down(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        mn: MnId,
        cell: CellId,
        pkt: PacketRef,
    ) {
        let now = ctx.now();
        // The packet is consumed here on every path; pull the delivery-
        // relevant fields out and release the slot before the logic.
        let (payload, flow, seq, created_at, payload_bytes) = {
            let p = self.arena.get(pkt);
            (p.payload, p.flow, p.seq, p.created_at, p.payload_bytes)
        };
        self.arena.free(pkt);
        let i = mn.0 as usize;
        let pos = self.mns.traj[i].position(now, &mut self.mns.rng[i]);
        // Semisoft: the node effectively listens to both the old cell and
        // the pending target; FlowQos de-duplicates.
        let attached_ok = self.mns.attached[i] == Some(cell)
            || self.mns.pending[i].map(|p| p.target) == Some(cell) && !self.cfg.mip_only;
        // Radio truth: the transmission only lands if the node is actually
        // inside the cell's radio range right now (one distance pass for
        // the footprint check and the path loss).
        let radio_ok = self
            .cells
            .rssi_if_covered(cell, pos)
            .is_some_and(|rssi| rssi >= mtnet_radio::SENSITIVITY_DBM);
        let reachable = attached_ok && radio_ok;
        if !reachable {
            if payload.is_data() {
                self.count_data_drop(DropCause::WirelessDetached);
            }
            return;
        }
        match payload {
            Payload::Data => {
                let fidx = self.flow_index.get(&flow).copied();
                if let Some(fidx) = fidx {
                    if let Some(agg) = self.report.aggregate.as_mut() {
                        // Aggregate mode: the per-flow tracker stays
                        // compact; the delay streams into the world-level
                        // accumulator.
                        let q = &mut self.flows[fidx].qos;
                        if let Some(d) =
                            q.record_received_compact(seq, created_at, now, payload_bytes)
                        {
                            agg.record(d.as_millis_f64());
                        }
                    } else {
                        self.flows[fidx]
                            .qos
                            .record_received(seq, created_at, now, payload_bytes);
                    }
                }
                self.mns.cip[i].touch(now);
                // First delivered data packet after a restore closes every
                // armed recovery-latency measurement.
                if !self.pending_recovery.is_empty() {
                    for t in std::mem::take(&mut self.pending_recovery) {
                        self.report
                            .faults
                            .recovery_latency_ms
                            .record(now.saturating_since(t).as_millis_f64());
                    }
                }
            }
            Payload::Mip(MipMessage::Reply(reply)) => {
                let action = self.mns.mip[i].on_reply(&reply, now);
                debug_assert!(matches!(action, MnAction::None));
                if reply.accepted() {
                    self.complete_latency_if(mn, now, |t| t.is_inter_domain());
                }
            }
            Payload::Mip(MipMessage::Advertisement(adv)) => {
                let action = self.mns.mip[i].on_advertisement(&adv, now);
                self.perform_mn_action(ctx, mn, action);
            }
            _ => {}
        }
    }

    fn perform_mn_action(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId, action: MnAction) {
        if let MnAction::SendRequest(req) = action {
            self.report.signaling.mip_requests += 1;
            if self.active_faults > 0 || !self.pending_recovery.is_empty() {
                self.report.faults.reregistrations += 1;
            }
            // In pure Mobile IP the FA is the serving BS itself; in the
            // multi-tier architecture it is the domain's RSMC. Either way
            // the request is addressed to the care-of address.
            self.air_up(ctx, mn, Payload::Mip(MipMessage::Request(req)), req.coa);
        }
    }

    fn complete_latency_if(&mut self, mn: MnId, now: SimTime, pred: impl Fn(HandoffType) -> bool) {
        let Some(pending) = self.pending_latency.get(&mn).copied() else {
            return;
        };
        if !pred(pending.htype) {
            return;
        }
        self.pending_latency.remove(&mn);
        let latency_ms = now.saturating_since(pending.decided_at).as_millis_f64();
        self.report
            .handoffs
            .latency_ms
            .entry(pending.htype)
            .or_default()
            .record(latency_ms);
    }

    // ------------------------------------------------------------------
    // Mobility and handoff
    // ------------------------------------------------------------------

    fn handle_move_sample(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId) {
        let now = ctx.now();
        ctx.schedule_in(self.cfg.move_sample, Ev::MoveSample(mn));
        let i = mn.0 as usize;
        // A handoff already in flight: wait for it to complete.
        if self.mns.pending[i].is_some() {
            return;
        }
        let pos = self.mns.traj[i].position(now, &mut self.mns.rng[i]);
        let speed = self.mns.traj[i].speed(now, &mut self.mns.rng[i]);
        // Candidate set restricted by the deployed tiers. Both buffers are
        // scratch space owned by the world: the measurement pass and the
        // candidate list cost no allocation per sample.
        let mut measurements = std::mem::take(&mut self.measure_scratch);
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        self.cells.measure_batch(pos, None, &mut measurements);
        candidates.clear();
        for meas in &measurements {
            let tier = Tier::of_cell(meas.kind);
            let allowed = match tier {
                Tier::Micro => self.cfg.has_micro,
                Tier::Macro => self.cfg.has_macro,
            };
            if allowed {
                candidates.push(Candidate {
                    cell: meas.cell,
                    tier,
                    rssi_dbm: meas.rssi_dbm,
                    free_ratio: meas.free_ratio,
                });
            }
        }
        self.measure_scratch = measurements;
        let current = self.mns.attached[i].map(|cell| {
            let tier = Tier::of_cell(self.cells.cell(cell).expect("known cell").kind());
            let rssi = candidates
                .iter()
                .find(|c| c.cell == cell)
                .map(|c| c.rssi_dbm);
            CurrentAttachment {
                cell,
                tier,
                rssi_dbm: rssi,
            }
        });
        let decision = self.engine.decide(speed, current, &candidates);
        self.candidate_scratch = candidates;
        match decision {
            HandoffDecision::Stay => {}
            HandoffDecision::Outage => {
                self.report.handoffs.outage_samples += 1;
                // Coverage hole: the radio link is gone. Detach, release
                // the channel, and let Mobile IP know the link dropped.
                if self.mns.attached[i].take().is_some() {
                    if let Some(held) = self.mns.channel_cell[i].take() {
                        if let Some(c) = self.cells.cell_mut(held) {
                            c.channels_mut().release();
                        }
                    }
                    self.mns.mip[i].on_link_lost();
                }
            }
            HandoffDecision::Handoff {
                target, fallback, ..
            } => {
                self.start_handoff(ctx, mn, target, fallback);
            }
        }
    }

    fn start_handoff(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        mn: MnId,
        target: CellId,
        fallback: Option<CellId>,
    ) {
        let now = ctx.now();
        let old = self.mns.attached[mn.0 as usize];
        let kind = if old.is_some() {
            CallKind::Handoff
        } else {
            CallKind::New
        };
        // Idle camping: a node with no traffic flows attaches at
        // paging level — no traffic channel, no admission, no
        // call-accounting. The channel pools stay sized by the active
        // population.
        let holds_channel = !(self.cfg.idle_camping && !self.mns.has_flow[mn.0 as usize]);
        // Admission at the target; §3.2 fallback to the other tier.
        let granted = if holds_channel {
            let mut admitted = None;
            for cand in [Some(target), fallback].into_iter().flatten() {
                let ok = self
                    .cells
                    .cell_mut(cand)
                    .expect("known cell")
                    .channels_mut()
                    .admit(kind)
                    .is_ok();
                if ok {
                    if admitted.is_none() && cand != target {
                        self.report.handoffs.fallback_used += 1;
                    }
                    admitted = Some(cand);
                    break;
                } else if cand == target {
                    self.report.handoffs.rejected += 1;
                }
            }
            let Some(granted) = admitted else {
                if kind == CallKind::New {
                    self.report.calls_blocked += 1;
                }
                return;
            };
            if kind == CallKind::New {
                self.report.calls_accepted += 1;
            }
            granted
        } else {
            target
        };
        // Handoff request + accept over the air. A camping node
        // re-associates silently (idle-state Cellular IP: no admission
        // exchange, no per-move signaling — the periodic paging update
        // is its only network traffic).
        if holds_channel {
            self.report.signaling.handoff_messages += 2;
            self.report.signaling.control_bytes += 48;
        }

        let htype = old.map(|o| classify(&self.hierarchy, o, granted));
        self.mns.pending[mn.0 as usize] = Some(PendingAttach {
            target: granted,
            old,
            htype,
            decided_at: now,
            holds_channel,
        });

        // Semisoft (micro-tier targets in CIP architectures): notify the
        // new path before retuning.
        let semisoft_capable = holds_channel
            && !self.cfg.mip_only
            && old.is_some()
            && matches!(self.cfg.handoff_kind, HandoffKind::Semisoft { .. })
            && self.domain_idx_of_cell(granted).is_some()
            && old.and_then(|o| self.domain_idx_of_cell(o)) == self.domain_idx_of_cell(granted);
        let attach_delay = if semisoft_capable {
            let HandoffKind::Semisoft { delay } = self.cfg.handoff_kind else {
                unreachable!()
            };
            // The semisoft packet climbs from the new BS immediately.
            let mn_addr = self.mns.home[mn.0 as usize];
            let didx = self.domain_idx_of_cell(granted).expect("checked");
            let gw_addr = self.topo.addr_of(self.domains[didx].rsmc_node);
            let new_bs = self.node_of_cell(granted);
            let bytes = Payload::Cip(CipControl::Semisoft { mn: mn_addr }).control_size_bytes();
            let pkt = self.alloc_packet(
                FlowId(0),
                0,
                mn_addr,
                gw_addr,
                bytes,
                now,
                Payload::Cip(CipControl::Semisoft { mn: mn_addr }),
            );
            self.report.signaling.route_updates += 1;
            let air = self.air_time(granted, self.arena.get(pkt).wire_bytes());
            ctx.schedule_at(
                now + air,
                Ev::Pkt {
                    node: new_bs,
                    from: None,
                    pkt,
                },
            );
            delay
        } else {
            self.cfg.air_delay.saturating_mul(2) + self.cfg.retune_delay
        };
        ctx.schedule_at(now + attach_delay, Ev::Attach(mn));
    }

    fn handle_attach(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId) {
        let now = ctx.now();
        let i = mn.0 as usize;
        let Some(pending) = self.mns.pending[i].take() else {
            return;
        };
        let target = pending.target;
        let old = pending.old;

        // Ping-pong accounting.
        if let Some((prev, left_at)) = self.mns.prev_cell[i] {
            if prev == target && now.saturating_since(left_at) < SimDuration::from_secs(5) {
                self.report.handoffs.ping_pong += 1;
            }
        }
        // Release the old channel.
        if let Some(held) = self.mns.channel_cell[i].take() {
            if let Some(c) = self.cells.cell_mut(held) {
                c.channels_mut().release();
            }
        }
        if pending.holds_channel {
            self.mns.channel_cell[i] = Some(target);
        }
        if let Some(o) = old {
            self.mns.prev_cell[i] = Some((o, now));
        }
        self.mns.attached[i] = Some(target);
        self.mns.cip[i].touch(now);

        if let Some(htype) = pending.htype {
            *self.report.handoffs.completed.entry(htype).or_insert(0) += 1;
            // Camping re-associations send no route update, so their
            // latency window would never close — the signaling latency
            // metric is an active-set metric.
            if pending.holds_channel {
                self.pending_latency.insert(
                    mn,
                    PendingLatency {
                        htype,
                        decided_at: pending.decided_at,
                    },
                );
            }
        }

        // A camping node's attach completes here: the network learns of
        // it only through the periodic paging update (`handle_uplink`) —
        // no location messages, no route repair, no Mobile IP
        // registration, no inter-domain updates. That is the idle-state
        // contract that keeps per-move signaling and directory churn
        // proportional to the *active* population.
        if !pending.holds_channel {
            return;
        }

        let mn_addr = self.mns.home[i];
        let new_didx = self.domain_idx_of_cell(target);
        let old_didx = old.and_then(|o| self.domain_idx_of_cell(o));

        // Multi-tier location management (§3.1/§3.2 messages).
        if !self.cfg.mip_only {
            if old.is_some() {
                self.report.signaling.update_messages += 1;
                self.report.signaling.control_bytes += 32;
                self.locdir
                    .on_update_location(&self.hierarchy, mn_addr, target, now);
                // Macro→micro sends the delete "in the same time" (§3.2a);
                // we issue it for every tier change and micro→micro too,
                // matching Fig 3.4's message lists.
                if let Some(o) = old {
                    self.report.signaling.delete_messages += 1;
                    self.report.signaling.control_bytes += 32;
                    self.locdir.on_delete_location(mn_addr, o);
                }
            } else {
                self.locdir
                    .on_location_message(&self.hierarchy, mn_addr, target, now);
                self.report.signaling.location_messages += 1;
            }
            // Route repair from the new BS (this is where the hard-handoff
            // loss window starts closing).
            if let Some(didx) = new_didx {
                let gw_addr = self.topo.addr_of(self.domains[didx].rsmc_node);
                self.report.signaling.route_updates += 1;
                self.air_up(
                    ctx,
                    mn,
                    Payload::Cip(CipControl::RouteUpdate {
                        mn: mn_addr,
                        came_from_bs: true,
                    }),
                    gw_addr,
                );
                // RSMC authentication on first entry to the domain — a
                // crashed RSMC cannot authenticate; the standby redoes it
                // on the next attach after takeover. The proof lives on the
                // node's row as a (domain, epoch) pair; the RSMC only
                // publishes its epoch (bumped on flush), so auth state on
                // the RSMC side is O(1) rather than O(subscribers).
                if self.cfg.rsmc_enabled && self.domains[didx].rsmc_alive {
                    let epoch = self.domains[didx].rsmc.epoch();
                    let key = (didx as u32, epoch);
                    let auth = &mut self.mns.auth[i];
                    if !auth.contains(&key) {
                        auth.retain(|&(d, _)| d != key.0);
                        auth.push(key);
                        let _auth_delay = self.domains[didx].rsmc.note_auth_performed();
                    }
                }
            }
        }

        // Mobile IP: (re-)registration when the care-of address changes —
        // inter-domain movement, initial attach, or every handoff in pure
        // Mobile IP mode.
        let coa_changed = self.cfg.mip_only && old != Some(target)
            || (!self.cfg.mip_only && new_didx != old_didx);
        if coa_changed {
            let adv = if self.cfg.mip_only {
                let bs_addr = self.topo.addr_of(self.node_of_cell(target));
                AgentAdvertisement {
                    agent: bs_addr,
                    coa: bs_addr,
                    max_lifetime: SimDuration::from_secs(300),
                    seq: 0,
                }
            } else {
                let didx = new_didx.expect("multi-tier cells always have a domain");
                let fa = self.domains[didx].fa.addr();
                AgentAdvertisement {
                    agent: fa,
                    coa: fa,
                    max_lifetime: SimDuration::from_secs(300),
                    seq: 0,
                }
            };
            let action = self.mns.mip[i].on_advertisement(&adv, now);
            self.perform_mn_action(ctx, mn, action);
        }

        // Inter-domain update messages (Figs 3.2/3.3): same-upper travels
        // over the shared upper BS link (cheap); different-upper detours
        // via the home network.
        if let (Some(ht), Some(new_didx), Some(old_didx)) = (pending.htype, new_didx, old_didx) {
            if ht.is_inter_domain() && !self.cfg.mip_only {
                let new_rsmc_node = self.domains[new_didx].rsmc_node;
                let new_rsmc_addr = self.domains[new_didx].rsmc.addr();
                let old_rsmc_addr = self.domains[old_didx].rsmc.addr();
                let msg = Payload::Mt(MtMessage::UpdateLocation {
                    mn: mn_addr,
                    new_cell: target,
                });
                self.report.signaling.update_messages += 1;
                let dst = if ht == HandoffType::InterDomainSameUpper {
                    // Fig 3.2: direct to the old domain; the min-delay path
                    // runs through the shared upper-layer BS.
                    old_rsmc_addr
                } else {
                    // Fig 3.3: "the most upper layer BS needs to deliver
                    // this message to home network of MN".
                    self.ha.addr()
                };
                self.send_control(ctx, new_rsmc_node, new_rsmc_addr, dst, msg);
            }
        }
    }

    // ------------------------------------------------------------------
    // Periodic maintenance
    // ------------------------------------------------------------------

    fn handle_uplink(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId) {
        let now = ctx.now();
        let i = mn.0 as usize;
        // A camping node's uplink exists only to refresh its paging-area
        // state; ticking it faster than the paging period would burn
        // O(subscribers) events to do nothing (see `World::camps`).
        let period = if self.camps(i) {
            self.cfg.cip_timers.paging_update
        } else {
            self.cfg
                .route_update_period
                .unwrap_or(self.cfg.cip_timers.route_update)
        };
        ctx.schedule_in(period, Ev::Uplink(mn));
        let Some(cell) = self.mns.attached[i] else {
            return;
        };
        let mn_addr = self.mns.home[i];
        // MIP retransmissions.
        let action = self.mns.mip[i].poll_retransmit(now);
        self.perform_mn_action(ctx, mn, action);
        // Periodic agent advertisements drive binding refresh: we fold the
        // advertisement into the maintenance tick (the MN state machine
        // only re-registers once the binding passes its half-life).
        if let mtnet_mobileip::MnState::Registered { .. } = self.mns.mip[i].state() {
            let fa_addr = if self.cfg.mip_only {
                self.bs_of_cell(cell).map(|n| self.topo.addr_of(n))
            } else {
                self.domain_idx_of_cell(cell)
                    .map(|didx| self.domains[didx].fa.addr())
            };
            if let Some(fa) = fa_addr {
                let adv = AgentAdvertisement {
                    agent: fa,
                    coa: fa,
                    max_lifetime: SimDuration::from_secs(300),
                    seq: 0,
                };
                let action = self.mns.mip[i].on_advertisement(&adv, now);
                self.perform_mn_action(ctx, mn, action);
            }
        }

        if self.cfg.mip_only {
            return;
        }
        let Some(didx) = self.domain_idx_of_cell(cell) else {
            return;
        };
        let gw_addr = self.topo.addr_of(self.domains[didx].rsmc_node);
        // Camping nodes are idle by construction (no flows): route
        // updates would advertise a data path nobody uses. Their CIP
        // mode can still read Active right after creation (the activity
        // timeout measures from t=0), so pin them to the paging branch.
        let mode = if self.camps(i) {
            MnMode::Idle
        } else {
            self.mns.cip[i].mode(now)
        };
        match mode {
            MnMode::Active => {
                self.report.signaling.route_updates += 1;
                self.air_up(
                    ctx,
                    mn,
                    Payload::Cip(CipControl::RouteUpdate {
                        mn: mn_addr,
                        came_from_bs: true,
                    }),
                    gw_addr,
                );
            }
            MnMode::Idle => {
                let since = now.saturating_since(self.mns.last_paging_update[i]);
                if since >= self.cfg.cip_timers.paging_update {
                    self.mns.last_paging_update[i] = now;
                    self.report.signaling.paging_updates += 1;
                    self.air_up(
                        ctx,
                        mn,
                        Payload::Cip(CipControl::PagingUpdate { mn: mn_addr }),
                        gw_addr,
                    );
                }
            }
        }
    }

    fn handle_location_tick(&mut self, ctx: &mut Context<'_, Ev>, mn: MnId) {
        let now = ctx.now();
        ctx.schedule_in(self.cfg.location_period, Ev::LocationTick(mn));
        if self.cfg.mip_only {
            return;
        }
        let Some(cell) = self.mns.attached[mn.0 as usize] else {
            return;
        };
        let mn_addr = self.mns.home[mn.0 as usize];
        self.report.signaling.location_messages += 1;
        self.report.signaling.control_bytes += 32;
        self.locdir
            .on_location_message(&self.hierarchy, mn_addr, cell, now);
    }

    fn handle_flow_next(&mut self, ctx: &mut Context<'_, Ev>, fidx: usize) {
        let now = ctx.now();
        let (mn, flow_id, arrival) = {
            let f = &mut self.flows[fidx];
            let arrival = f.gen.next(&mut f.rng);
            (f.mn, f.flow, arrival)
        };
        // Diurnal load: stretch the gap by the curve's multiplier at the
        // current instant (a pure function of `now` — deterministic).
        let gap = match self.cfg.load_curve {
            Some(curve) => SimDuration::from_nanos(
                (arrival.gap.as_nanos() as f64 * curve.gap_multiplier(now)) as u64,
            ),
            None => arrival.gap,
        };
        ctx.schedule_in(gap, Ev::FlowNext(fidx));
        let Some(mn) = self.mns.resolve(mn) else {
            return;
        };
        let mn_addr = self.mns.home[mn.0 as usize];
        let seq = {
            let f = &mut self.flows[fidx];
            let s = f.seq;
            f.seq += 1;
            f.qos.record_sent(s, now, arrival.bytes);
            s
        };
        let cn = self.cn_addr;
        let pkt = self.alloc_packet(flow_id, seq, cn, mn_addr, arrival.bytes, now, Payload::Data);
        // CN route optimization: tunnel straight to the last notified RSMC.
        if let Some(rsmc) = self.cn_route[mn.0 as usize] {
            self.arena
                .get_mut(pkt)
                .encapsulate(cn, rsmc, TunnelKind::Rsmc);
        }
        ctx.schedule_now(Ev::Pkt {
            node: self.cn_node,
            from: None,
            pkt,
        });
    }

    fn handle_sweep(&mut self, ctx: &mut Context<'_, Ev>) {
        // Sweeps are replicated on every shard (see `shard`).
        self.replicated_events += 1;
        let now = ctx.now();
        ctx.schedule_in(SimDuration::from_secs(5), Ev::Sweep);
        self.locdir.sweep(now);
        self.ha.expire(now);
        for d in &mut self.domains {
            d.cip.sweep(now);
            d.rsmc.sweep(now);
            d.semisoft.sweep(now);
            d.fa.expire(now);
        }
    }

    // ------------------------------------------------------------------
    // Packet entry from the CN / HA path (special-cased nodes)
    // ------------------------------------------------------------------

    /// Pre-routing at the home agent: intercept + tunnel packets for
    /// registered mobile nodes (Fig 2.2 step 2a).
    fn ha_intercept(&mut self, pkt: PacketRef, now: SimTime) {
        let dst = {
            let p = self.arena.get(pkt);
            if p.is_encapsulated() {
                return;
            }
            p.dst
        };
        if let Some(coa) = self.ha.tunnel_endpoint_counted(dst, now) {
            let ha = self.ha.addr();
            self.arena
                .get_mut(pkt)
                .encapsulate(ha, coa, TunnelKind::HomeAgent);
        }
    }
}

impl World {
    /// The [`Ev::Pkt`] arm of event dispatch, shared by the one-at-a-time
    /// loop and the batched run handler.
    fn dispatch_pkt(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        from: Option<NodeId>,
        pkt: PacketRef,
    ) {
        // Home-agent interception happens as the packet transits the HA
        // router.
        if node == self.ha_node && self.mn_of(self.arena.get(pkt).dst).is_some() {
            self.ha_intercept(pkt, ctx.now());
            // If no binding exists the packet has nowhere to go.
            if !self.arena.get(pkt).is_encapsulated() {
                self.drop_packet(pkt, DropCause::NoBinding);
                return;
            }
            self.forward_wired(ctx, node, pkt);
            return;
        }
        self.handle_pkt(ctx, node, from, pkt);
    }

    fn handle_event_inner(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::Pkt { node, from, pkt } => self.dispatch_pkt(ctx, node, from, pkt),
            Ev::AirDown { mn, cell, pkt } => self.handle_air_down(ctx, mn, cell, pkt),
            Ev::MoveSample(mn) => self.handle_move_sample(ctx, mn),
            Ev::Uplink(mn) => self.handle_uplink(ctx, mn),
            Ev::LocationTick(mn) => self.handle_location_tick(ctx, mn),
            Ev::FlowNext(fidx) => self.handle_flow_next(ctx, fidx),
            Ev::Attach(mn) => self.handle_attach(ctx, mn),
            Ev::Sweep => self.handle_sweep(ctx),
            Ev::Fault(idx) => self.handle_fault(ctx, idx),
        }
    }
}

impl Model for World {
    type Event = Ev;

    fn handle_event(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        if evprof::enabled() {
            let slot = evprof::slot(&event);
            let t0 = std::time::Instant::now();
            self.handle_event_inner(ctx, event);
            evprof::record(slot, t0.elapsed());
            return;
        }
        self.handle_event_inner(ctx, event);
    }

    /// Batched dispatch: one pass warms the arena slots every packet in
    /// the run will hit, then the run drains through a packet fast path
    /// that skips the full nine-way match. Runs are same-variant by
    /// construction, so the fallback arm handles whole runs of the other
    /// variants — `handle_event`'s match is the single source of truth
    /// for those. The world never cancels same-instant events of the
    /// same type from inside a handler, so the batched path's
    /// already-committed-run semantics (see [`Model::handle_run`]) are
    /// indistinguishable here.
    fn handle_run(&mut self, ctx: &mut Context<'_, Ev>, run: &mut Vec<Ev>) {
        if run.len() >= 4 {
            for ev in run.iter() {
                match ev {
                    Ev::Pkt { pkt, .. } | Ev::AirDown { pkt, .. } => self.arena.touch(*pkt),
                    _ => break,
                }
            }
        }
        for event in run.drain(..) {
            match event {
                Ev::Pkt { node, from, pkt } => self.dispatch_pkt(ctx, node, from, pkt),
                other => self.handle_event(ctx, other),
            }
        }
    }
}

// The parallel batch runner (`mtnet_sim::runner`) ships whole worlds to
// worker threads: a world is built from its config on one thread, run to
// completion there, and only the report crosses back. Nothing in the
// world may regress to `Rc`/`RefCell`/thread-local state.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
    assert_send::<WorldConfig>();
    assert_send::<SimReport>();
};

impl World {
    /// Builds the world a declarative [`crate::spec::ScenarioSpec`]
    /// describes — the single assembly path every scenario preset,
    /// experiment runner and sweep cell goes through. The spec's seed
    /// derivation is resolved against `master_seed` (ignored for
    /// [`crate::spec::SeedSpec::Raw`] seeds).
    pub fn from_spec(spec: &crate::spec::ScenarioSpec, master_seed: u64) -> World {
        spec.build(master_seed)
    }

    /// Largest population the historical linear stagger formulas are kept
    /// for, bit for bit. Every cataloged scenario (E1–E13) sits at or
    /// below this; larger worlds fold the stagger back into each node's
    /// own period so the first tick of node 10^6 is not parked days into
    /// the run.
    const LEGACY_STAGGER_MAX: usize = 250;

    /// True when node `i` camps: under [`WorldConfig::idle_camping`] a
    /// node that sources no traffic flow attends no channel, sends no
    /// location messages and ticks its uplink at the *paging-update*
    /// cadence — the network's per-idle-subscriber cost is one paging
    /// message per paging period, nothing else.
    pub(crate) fn camps(&self, i: usize) -> bool {
        self.cfg.idle_camping && !self.mns.has_flow[i]
    }

    /// Initial `(MoveSample, Uplink, LocationTick)` times for node `i` —
    /// the single source of truth shared by [`World::run`] and
    /// `shard::into_replica` (bit-exactness across engines depends on
    /// both using identical start times). A camping node gets no
    /// `LocationTick` at all (`None`) and staggers its uplink over the
    /// paging period instead of the route-update period — the O(idle)
    /// event mass runs at paging cadence, not signaling cadence.
    pub(crate) fn mn_start_times(&self, i: usize) -> (SimTime, SimTime, Option<SimTime>) {
        let camps = self.camps(i);
        let i = i as u64;
        if self.mns.len() <= Self::LEGACY_STAGGER_MAX {
            return (
                SimTime::from_millis(i * 7),
                SimTime::from_millis(100 + i * 13),
                (!camps).then(|| SimTime::from_millis(200 + i * 17)),
            );
        }
        // Metro scale: same prime strides, wrapped modulo each tick's own
        // period so every node's first tick lands inside the first cycle.
        let ms = |d: SimDuration| (d.as_nanos() / 1_000_000).max(1);
        let move_ms = ms(self.cfg.move_sample);
        let up_ms = if camps {
            ms(self.cfg.cip_timers.paging_update)
        } else {
            ms(self
                .cfg
                .route_update_period
                .unwrap_or(self.cfg.cip_timers.route_update))
        };
        let loc_ms = ms(self.cfg.location_period);
        (
            SimTime::from_millis((i * 7) % move_ms),
            SimTime::from_millis(100 + (i * 13) % up_ms),
            (!camps).then(|| SimTime::from_millis(200 + (i * 17) % loc_ms)),
        )
    }

    /// Initial `FlowNext` time for flow `f`; see [`World::mn_start_times`].
    pub(crate) fn flow_start_time(&self, f: usize) -> SimTime {
        let f = f as u64;
        if self.mns.len() <= Self::LEGACY_STAGGER_MAX {
            SimTime::from_millis(500 + f * 11)
        } else {
            SimTime::from_millis(500 + (f * 11) % 2000)
        }
    }

    /// Runs the world for `duration` and extracts the report.
    ///
    /// The initial schedule below is mirrored (with ownership filters) by
    /// `shard::into_replica` — keep the two in sync, the sharded engine's
    /// bit-exactness depends on identical program order.
    pub fn run(self, duration: SimDuration) -> SimReport {
        let kind = self.cfg.scheduler;
        let batched = shard::dispatch_batching_from_env().unwrap_or(self.cfg.dispatch_batching);
        let mut sim = Simulator::new(self)
            .with_scheduler(kind)
            .with_batched_dispatch(batched);
        // Kick off periodic machinery.
        let n_mns = sim.model().mns.len();
        let n_flows = sim.model().flows.len();
        for i in 0..n_mns {
            let mn = MnId(i as u32);
            // Stagger start times so nodes do not move in lockstep.
            let (t_move, t_up, t_loc) = sim.model().mn_start_times(i);
            sim.schedule_at(t_move, Ev::MoveSample(mn));
            sim.schedule_at(t_up, Ev::Uplink(mn));
            if let Some(t_loc) = t_loc {
                sim.schedule_at(t_loc, Ev::LocationTick(mn));
            }
        }
        for f in 0..n_flows {
            sim.schedule_at(sim.model().flow_start_time(f), Ev::FlowNext(f));
        }
        sim.schedule_at(SimTime::from_secs(5), Ev::Sweep);
        // Fault edges last: same-instant ties against periodic machinery
        // resolve by schedule order, which this fixes once for every run.
        let fault_times: Vec<SimTime> = sim.model().fault_plan.iter().map(|(t, _)| *t).collect();
        for (idx, t) in fault_times.into_iter().enumerate() {
            sim.schedule_at(t, Ev::Fault(idx));
        }
        sim.run_until(SimTime::ZERO + duration);
        let events = sim.events_processed();
        sim.into_model().finish_report(duration, events)
    }

    /// Extracts the final report from a finished world: the shared tail
    /// of the sequential [`World::run`] and each sharded replica.
    fn finish_report(mut self, duration: SimDuration, events: u64) -> SimReport {
        self.report.duration = duration;
        self.report.events_processed = events;
        self.report.flows = self.flows.iter().map(|f| (f.flow, f.qos.clone())).collect();
        self.report
    }

    /// Runs the world and wraps the report with the run's identity — the
    /// config-in / [`crate::report::RunReport`]-out unit the parallel batch runner
    /// collects in submission order.
    pub fn run_report(
        self,
        duration: SimDuration,
        label: impl Into<String>,
        replication: u64,
    ) -> crate::report::RunReport {
        let seed = self.cfg.seed;
        crate::report::RunReport {
            label: label.into(),
            seed,
            replication,
            report: self.run(duration),
        }
    }
}

#[cfg(test)]
mod tests;

/// Opt-in event-handler profiling: set `MTNET_EVPROF=1` and every
/// handler invocation accumulates wall time into a per-variant bucket;
/// [`evprof::report`] renders the totals. Process-global (the counters
/// sum across worlds), ~50ns of `Instant` overhead per event when
/// enabled, a single cached-bool test when not — the tool of first
/// resort when a metro-scale run's wall time needs explaining.
#[doc(hidden)]
pub mod evprof {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    const N: usize = 10;
    static COUNT: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];
    static NANOS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];
    static ON: OnceLock<bool> = OnceLock::new();

    pub(crate) fn enabled() -> bool {
        *ON.get_or_init(|| std::env::var_os("MTNET_EVPROF").is_some())
    }

    pub(crate) fn slot(ev: &super::Ev) -> usize {
        match ev {
            super::Ev::Pkt { .. } => 0,
            super::Ev::AirDown { .. } => 1,
            super::Ev::MoveSample(_) => 2,
            super::Ev::Uplink(_) => 3,
            super::Ev::LocationTick(_) => 4,
            super::Ev::FlowNext(_) => 5,
            super::Ev::Attach(_) => 6,
            super::Ev::Sweep => 7,
            super::Ev::Fault(_) => 8,
        }
    }

    pub(crate) fn record(slot: usize, d: std::time::Duration) {
        COUNT[slot].fetch_add(1, Ordering::Relaxed);
        NANOS[slot].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn report() -> String {
        const NAMES: [&str; N] = [
            "Pkt",
            "AirDown",
            "MoveSample",
            "Uplink",
            "LocationTick",
            "FlowNext",
            "Attach",
            "Sweep",
            "Fault",
            "?",
        ];
        let mut out = String::new();
        for i in 0..N {
            let c = COUNT[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let ns = NANOS[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{:<14} {:>10}  total {:>8.3}s  avg {:>6}ns\n",
                NAMES[i],
                c,
                ns as f64 / 1e9,
                ns / c
            ));
        }
        out
    }
}
