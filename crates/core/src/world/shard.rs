//! Conservative time-window parallel execution of one world.
//!
//! One [`World`] is sharded by **replicating** it: every shard holds a
//! full copy of the world built from the same spec and seed, but executes
//! only the event classes it *owns*. Ownership follows the wired
//! topology's natural cut:
//!
//! * the **backbone shard** owns everything that happens at the Internet
//!   core, the Home Agent and the Correspondent Node — flow generation
//!   ([`Ev::FlowNext`]), HA interception/registration, CN route
//!   optimization, and every wired hop at those nodes;
//! * the **access shard** owns the mobile side — mobility sampling,
//!   uplinks, location ticks, attaches, air deliveries, and every wired
//!   hop inside the CIP domain trees, their RSMCs and upper BSs.
//!
//! Two event classes are **replicated** on every shard instead of owned:
//! periodic cache sweeps ([`Ev::Sweep`]) and fault-plan edges
//! ([`Ev::Fault`]). Replicating them keeps each copy's shared
//! *environment* — link admin state, cell outage state, topology
//! generation, the active-fault balance — bit-identical to the sequential
//! engine's, without any cross-shard state protocol. Their duplicate
//! executions are subtracted from the merged event count.
//!
//! ## Lookahead and windows
//!
//! The only links crossing the cut are the Internet ↔ RSMC wide-area
//! pairs, so any packet one shard emits toward the other arrives no
//! earlier than its emission time plus the minimum boundary propagation
//! delay `L` ([`mtnet_net::Topology::min_cross_partition_delay`]). That makes the
//! half-open window `[t, t + L)` — with `t` the earliest pending event
//! across shards — safe to execute in parallel with no communication at
//! all: a classic conservative (lookahead-based) round. At each window
//! edge the shards' outboxes are drained **in shard order** and
//! stable-sorted by arrival time, so the injection order is a pure
//! function of the simulation state — identical no matter how many OS
//! threads ran the window.
//!
//! ## Determinism contract
//!
//! `run_sharded` produces a [`SimReport`] whose
//! [`fingerprint`](SimReport::fingerprint) is byte-identical to the
//! sequential engine's for the same spec and master seed, at any shard
//! count and any thread count (`tests/determinism.rs` in the bench crate
//! enforces this, and CI diffs full fingerprint dumps). This is possible
//! because the ownership cut splits the *metric* state exactly: every
//! counter, histogram and float summary is written by events of a single
//! shard (flow `sent` on the backbone, everything air-side on the access
//! shard, signaling per emission site…), so the merge is field-wise
//! adoption and integer sums — no float re-accumulation, no reordering.
//!
//! ## When one shard beats two
//!
//! The partition has exactly two ownership groups, and the backbone group
//! executes a small fraction of the events (flow generation plus a few
//! wired hops per packet). Speed-up is therefore bounded by the backbone
//! share and the per-window barrier cost; small worlds or short windows
//! (dense event horizons) can run *slower* sharded than sequential.
//! Requesting more shards than ownership groups clamps to the group
//! count.

use super::{Ev, World};
use crate::messages::Payload;
use crate::report::SimReport;
use mtnet_net::{NodeId, Packet};
use mtnet_sim::{SimDuration, SimTime, Simulator};

/// Shard id of the Internet-core / HA / CN replica.
pub(crate) const BACKBONE: u32 = 0;
/// Shard id of the access-network replica (authoritative for every
/// mobility, handoff and fault resilience metric).
pub(crate) const ACCESS: u32 = 1;
/// Ownership groups the node partition produces (see module docs).
const GROUPS: u32 = 2;

/// A packet in transit between shards: extracted by value from the
/// emitting replica's arena at the boundary link, re-inserted into the
/// owning replica's arena at the next window edge.
pub(crate) struct Crossing {
    /// Wire-level arrival time at the destination node.
    pub(crate) at: SimTime,
    /// Destination node (owned by the other shard).
    pub(crate) node: NodeId,
    /// The boundary node the packet left from.
    pub(crate) from: NodeId,
    /// The packet itself, hops and tunnel stack intact.
    pub(crate) packet: Packet<Payload>,
}

/// Per-replica sharding context. `None` on a sequentially-run world;
/// `Some` switches `World::forward_wired` into diverting boundary
/// crossings to the outbox instead of scheduling them locally.
pub(crate) struct ShardCtx {
    /// This replica's shard id.
    pub(crate) own: u32,
    /// Owning shard of every node, indexed densely by `NodeId`.
    pub(crate) node_shard: Vec<u32>,
    /// Packets leaving this shard in the current window, in emission
    /// order (drained at every window edge).
    pub(crate) outbox: Vec<Crossing>,
}

impl ShardCtx {
    /// True when a wired hop to `node` leaves this shard.
    #[inline]
    pub(crate) fn diverts(&self, node: NodeId) -> bool {
        self.node_shard[node.0 as usize] != self.own
    }
}

/// The node partition plus the lookahead it induces.
struct ShardPlan {
    node_shard: Vec<u32>,
    lookahead: SimDuration,
}

impl ShardPlan {
    /// Partitions `world`'s nodes into the backbone and access groups and
    /// extracts the boundary lookahead. `None` when the world cannot be
    /// sharded (no backbone/access cut, or a zero-delay boundary link
    /// that would make windows empty) — callers fall back to the
    /// sequential engine.
    fn for_world(world: &World) -> Option<ShardPlan> {
        let mut node_shard = vec![ACCESS; world.topo.node_count()];
        let internet = world
            .topo
            .node_by_addr("1.0.0.1".parse().expect("static addr"));
        for node in internet.into_iter().chain([world.ha_node, world.cn_node]) {
            node_shard[node.0 as usize] = BACKBONE;
        }
        let lookahead = world
            .topo
            .min_cross_partition_delay(|n| node_shard[n.0 as usize])?;
        (lookahead > SimDuration::ZERO).then_some(ShardPlan {
            node_shard,
            lookahead,
        })
    }
}

/// Runs one world sharded across cores, producing a report
/// byte-identical to `build().run(duration)`.
///
/// `build` must be a pure constructor (same world every call): each shard
/// runs its own replica built by it. `shards` is the requested shard
/// count; values above the partition's ownership-group count clamp, and
/// `shards <= 1` (or an unshardable world) runs the sequential engine.
pub fn run_sharded(build: impl Fn() -> World, duration: SimDuration, shards: u32) -> SimReport {
    let first = build();
    if shards <= 1 {
        return first.run(duration);
    }
    let Some(plan) = ShardPlan::for_world(&first) else {
        return first.run(duration);
    };
    let n = GROUPS.min(shards);
    let mut sims: Vec<Simulator<World>> = Vec::with_capacity(n as usize);
    let mut seed_world = Some(first);
    for shard in 0..n {
        let world = seed_world.take().unwrap_or_else(&build);
        sims.push(into_replica(world, &plan, shard));
    }

    // One worker per extra shard is all the parallelism the partition
    // offers; on a single-core box the windows just run inline.
    let parallel = std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
    let horizon = SimTime::ZERO + duration;
    loop {
        let Some(start) = sims.iter_mut().filter_map(|s| s.next_event_time()).min() else {
            break;
        };
        if start > horizon {
            break;
        }
        // Everything in [start, start + L) is safe: a packet emitted at
        // u >= start over a boundary link of propagation >= L arrives at
        // u + L or later — strictly after this window.
        let end = SimTime::from_nanos((start + plan.lookahead).as_nanos() - 1).min(horizon);
        run_window(&mut sims, end, parallel);
        exchange(&mut sims, &plan);
    }

    merge(sims, duration)
}

/// Wraps one world replica in a simulator and schedules its initial
/// events. Mirrors `World::run`'s schedule **in the same program order**
/// (so same-instant ties resolve exactly as they do sequentially within
/// each replica), with each event class landing only on its owner —
/// except the replicated classes (sweeps, fault edges), which land on
/// every replica. Keep in sync with `World::run`.
fn into_replica(mut world: World, plan: &ShardPlan, own: u32) -> Simulator<World> {
    world.shard = Some(ShardCtx {
        own,
        node_shard: plan.node_shard.clone(),
        outbox: Vec::new(),
    });
    let kind = world.cfg.scheduler;
    let batched = dispatch_batching_from_env().unwrap_or(world.cfg.dispatch_batching);
    let mut sim = Simulator::new(world)
        .with_scheduler(kind)
        .with_batched_dispatch(batched);
    let n_mns = sim.model().mns.len();
    let n_flows = sim.model().flows.len();
    if own == ACCESS {
        for i in 0..n_mns {
            let mn = crate::messages::MnId(i as u32);
            let (t_move, t_up, t_loc) = sim.model().mn_start_times(i);
            sim.schedule_at(t_move, Ev::MoveSample(mn));
            sim.schedule_at(t_up, Ev::Uplink(mn));
            if let Some(t_loc) = t_loc {
                sim.schedule_at(t_loc, Ev::LocationTick(mn));
            }
        }
    }
    if own == BACKBONE {
        for f in 0..n_flows {
            sim.schedule_at(sim.model().flow_start_time(f), Ev::FlowNext(f));
        }
    }
    sim.schedule_at(SimTime::from_secs(5), Ev::Sweep);
    let fault_times: Vec<SimTime> = sim.model().fault_plan.iter().map(|(t, _)| *t).collect();
    for (idx, t) in fault_times.into_iter().enumerate() {
        sim.schedule_at(t, Ev::Fault(idx));
    }
    sim
}

/// Advances every shard to `end` (inclusive), in parallel when the box
/// has the cores for it. Which branch runs cannot affect results: the
/// shards share nothing within a window.
fn run_window(sims: &mut [Simulator<World>], end: SimTime, parallel: bool) {
    if !parallel || sims.len() < 2 {
        for sim in sims.iter_mut() {
            sim.run_until(end);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = sims.iter_mut();
        let first = rest.next().expect("at least one shard");
        let spawned: Vec<_> = rest
            .map(|sim| {
                scope.spawn(move || {
                    sim.run_until(end);
                })
            })
            .collect();
        first.run_until(end);
        for handle in spawned {
            handle.join().expect("shard thread panicked");
        }
    });
}

/// Moves every boundary crossing emitted during the last window into its
/// owning shard's event queue. Outboxes drain in shard order and the
/// concatenation is stable-sorted by arrival time, so same-instant
/// crossings keep a fixed (shard, emission) order — the injection
/// sequence is deterministic regardless of thread count.
fn exchange(sims: &mut [Simulator<World>], plan: &ShardPlan) {
    let mut crossings: Vec<Crossing> = Vec::new();
    for sim in sims.iter_mut() {
        let ctx = sim.model_mut().shard.as_mut().expect("replica context");
        crossings.append(&mut ctx.outbox);
    }
    crossings.sort_by_key(|c| c.at);
    for c in crossings {
        let dest = plan.node_shard[c.node.0 as usize] as usize;
        let sim = &mut sims[dest];
        let pkt = sim.model_mut().arena.insert(c.packet);
        sim.schedule_at(
            c.at,
            Ev::Pkt {
                node: c.node,
                from: Some(c.from),
                pkt,
            },
        );
    }
}

/// Combines the replicas' reports into the sequential run's report.
///
/// The ownership cut makes every metric single-writer, so the merge is
/// exact — no float accumulation happens here:
///
/// * **flows** — receive side (delays, jitter, throughput) lives on the
///   access replica; only the `sent` counter is adopted from the
///   backbone replica's tracker ([`mtnet_traffic::FlowQos::adopt_sent`]);
/// * **handoffs, calls, fault transitions, re-registrations, recovery
///   latency** — access replica only (the backbone replica never touches
///   them, which `debug_assert`s below check);
/// * **signaling, drops, outage drops** — integer sums: each increment
///   site executes on exactly one replica;
/// * **events** — the sum over replicas minus the duplicate executions
///   of replicated events (sweeps, fault edges) on non-access replicas.
fn merge(sims: Vec<Simulator<World>>, duration: SimDuration) -> SimReport {
    let mut events: u64 = 0;
    let mut access: Option<SimReport> = None;
    let mut rest: Vec<SimReport> = Vec::new();
    for sim in sims {
        events += sim.events_processed();
        let world = sim.into_model();
        let own = world.shard.as_ref().expect("replica context").own;
        if own == ACCESS {
            access = Some(world.finish_report(duration, 0));
        } else {
            events -= world.replicated_events;
            rest.push(world.finish_report(duration, 0));
        }
    }
    let mut out = access.expect("access shard exists");
    for bb in rest {
        debug_assert_eq!(bb.handoffs.total(), 0, "handoffs are access-owned");
        debug_assert_eq!(
            bb.faults.recovery_latency_ms.count(),
            0,
            "recovery latency is access-owned"
        );
        debug_assert_eq!(
            bb.aggregate.as_ref().map_or(0, |a| a.count()),
            0,
            "aggregate delay is access-owned (receives land on ACCESS)"
        );
        for ((_, q), (_, bq)) in out.flows.iter_mut().zip(&bb.flows) {
            q.adopt_sent(bq);
        }
        let s = &mut out.signaling;
        let b = &bb.signaling;
        s.location_messages += b.location_messages;
        s.update_messages += b.update_messages;
        s.delete_messages += b.delete_messages;
        s.route_updates += b.route_updates;
        s.paging_updates += b.paging_updates;
        s.page_messages += b.page_messages;
        s.mip_requests += b.mip_requests;
        s.mip_replies += b.mip_replies;
        s.rsmc_notifications += b.rsmc_notifications;
        s.handoff_messages += b.handoff_messages;
        s.control_bytes += b.control_bytes;
        for (&cause, &n) in &bb.drops {
            *out.drops.entry(cause).or_insert(0) += n;
        }
        out.faults.outage_drops += bb.faults.outage_drops;
        out.calls_blocked += bb.calls_blocked;
        out.calls_accepted += bb.calls_accepted;
    }
    out.duration = duration;
    out.events_processed = events;
    out
}

/// Environment variable overriding the spec's shard count.
pub const SHARDS_ENV: &str = "MTNET_SHARDS";

/// Parses a shard count: a positive integer, nothing looser. The CLI
/// `--shards` flag and [`shards_from_env`] share this so they cannot
/// drift apart.
pub fn parse_shard_count(v: &str) -> Result<u32, ()> {
    match v.trim().parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(()),
    }
}

/// The strict [`SHARDS_ENV`] environment override: unset or empty means
/// "use the spec's value"; anything else must parse as a positive
/// integer.
///
/// # Panics
///
/// Panics on a malformed or zero value — a typo must not silently run a
/// different engine than the one asked for.
pub fn shards_from_env() -> Option<u32> {
    match std::env::var(SHARDS_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(
            parse_shard_count(&v)
                .unwrap_or_else(|()| panic!("{SHARDS_ENV} must be a positive integer, got {v:?}")),
        ),
        _ => None,
    }
}

/// Environment variable overriding
/// [`WorldConfig::dispatch_batching`](super::WorldConfig::dispatch_batching)
/// for every world built in this process — the A/B lever the determinism
/// smoke flips without recompiling.
pub const DISPATCH_BATCH_ENV: &str = "MTNET_DISPATCH_BATCH";

/// The strict [`DISPATCH_BATCH_ENV`] override: unset or empty means "use
/// the config's value"; `0` forces batching off, `1` forces it on.
///
/// # Panics
///
/// Panics on anything else — a typo must not silently run a different
/// dispatch path than the one asked for.
pub fn dispatch_batching_from_env() -> Option<bool> {
    match std::env::var(DISPATCH_BATCH_ENV) {
        Ok(v) if !v.trim().is_empty() => match v.trim() {
            "0" => Some(false),
            "1" => Some(true),
            _ => panic!("{DISPATCH_BATCH_ENV} must be 0 or 1, got {v:?}"),
        },
        _ => None,
    }
}
