//! World-level unit tests: protocol interactions on small, controlled
//! deployments.

use super::*;
use crate::scenario::{ArchKind, Population, Scenario};
use mtnet_mobility::{LinearCommute, Point, Stationary};

fn commute_world(arch: ArchKind, secs: f64, seed: u64) -> SimReport {
    Scenario::commute_corridor(seed)
        .with_arch(arch)
        .run_secs(secs)
}

#[test]
fn stationary_node_registers_and_receives() {
    // A parked pedestrian population: no handoffs, near-zero loss.
    let mut b = WorldBuilder::new(WorldConfig::default());
    b.add_domain(DomainSpec::default());
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice],
    );
    let report = b.build().run(SimDuration::from_secs(30));
    let q = report.aggregate_qos();
    assert!(q.sent > 1000, "voice flow ran: {}", q.sent);
    assert!(
        q.loss_rate < 0.02,
        "stationary node loses ~nothing, got {:.4} (drops {:?})",
        q.loss_rate,
        report.drops
    );
    assert_eq!(report.handoffs.total(), 0, "nothing to hand off");
    // Exactly one registration (initial attach), refreshed rarely.
    assert!(report.signaling.mip_requests >= 1);
}

#[test]
fn voice_delay_reflects_topology() {
    let mut b = WorldBuilder::new(WorldConfig::default());
    b.add_domain(DomainSpec::default());
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice],
    );
    let report = b.build().run(SimDuration::from_secs(20));
    let q = report.aggregate_qos();
    // CN→internet(5ms)→RSMC(25ms)→tree(2ms×n)→air(2ms+ser):
    // one-way delay lands in the tens of milliseconds.
    assert!(
        (20.0..80.0).contains(&q.mean_delay_ms),
        "delay {} outside plausible topology range",
        q.mean_delay_ms
    );
}

#[test]
fn cn_route_optimization_reduces_delay() {
    let run = |notify_cn: bool| {
        let mut cfg = WorldConfig::default();
        cfg.notify_cn = notify_cn;
        let mut b = WorldBuilder::new(cfg);
        b.add_domain(DomainSpec::default());
        b.add_mn(
            Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
            &[FlowKind::Voice],
        );
        b.build()
            .run(SimDuration::from_secs(30))
            .aggregate_qos()
            .mean_delay_ms
    };
    let optimized = run(true);
    let triangle = run(false);
    assert!(
        optimized + 5.0 < triangle,
        "CN notify should cut the HA detour: {optimized} !<< {triangle}"
    );
}

#[test]
fn semisoft_duplicates_only_with_semisoft() {
    let report_semi = Scenario::single_domain(3).run_secs(150.0);
    let report_hard = Scenario::single_domain(3)
        .with_arch(ArchKind::multi_tier_hard())
        .run_secs(150.0);
    assert_eq!(
        report_hard.aggregate_qos().duplicates,
        0,
        "hard never bicasts"
    );
    if report_semi.handoffs.total() > 0 {
        assert!(
            report_semi.aggregate_qos().duplicates > 0,
            "semisoft handoffs should bicast: {:?}",
            report_semi.handoffs.completed
        );
    }
}

#[test]
fn hard_handoff_loses_at_least_semisoft() {
    let semi = Scenario::single_domain(11).run_secs(300.0);
    let hard = Scenario::single_domain(11)
        .with_arch(ArchKind::multi_tier_hard())
        .run_secs(300.0);
    let (ls, lh) = (
        semi.aggregate_qos().loss_rate,
        hard.aggregate_qos().loss_rate,
    );
    assert!(
        ls <= lh + 1e-4,
        "semisoft loss {ls} must not exceed hard loss {lh}"
    );
}

#[test]
fn inter_domain_same_upper_faster_than_different() {
    let same = commute_world(ArchKind::multi_tier(), 400.0, 21);
    let diff = Scenario::commute_corridor(21)
        .without_shared_upper()
        .run_secs(400.0);
    let same_lat = same
        .handoffs
        .latency_ms
        .get(&HandoffType::InterDomainSameUpper)
        .map(|s| s.mean());
    let diff_lat = diff
        .handoffs
        .latency_ms
        .get(&HandoffType::InterDomainDifferentUpper)
        .map(|s| s.mean());
    let (Some(same_lat), Some(diff_lat)) = (same_lat, diff_lat) else {
        panic!(
            "both corridors must produce inter-domain handoffs: {:?} / {:?}",
            same.handoffs.completed, diff.handoffs.completed
        );
    };
    assert!(
        same_lat * 2.0 < diff_lat,
        "Fig 3.2 ({same_lat} ms) must be far cheaper than Fig 3.3 ({diff_lat} ms)"
    );
}

#[test]
fn pure_mobile_ip_registers_on_every_handoff() {
    let report = commute_world(ArchKind::PureMobileIp, 400.0, 5);
    assert!(
        report.handoffs.total() > 0,
        "the shuttle crosses macro cells"
    );
    // Every handoff triggers a fresh registration, plus initial attaches.
    assert!(
        report.signaling.mip_requests as i64 >= report.handoffs.total() as i64,
        "registrations {} < handoffs {}",
        report.signaling.mip_requests,
        report.handoffs.total()
    );
}

#[test]
fn flat_cip_fast_nodes_suffer_outage() {
    let report = Scenario::commute_corridor(9)
        .with_arch(ArchKind::FlatCellularIp)
        .with_population(Population {
            pedestrians: 0,
            vehicles: 1,
            cyclists: 0,
        })
        .run_secs(300.0);
    assert!(
        report.handoffs.outage_samples > 0,
        "a 25 m/s vehicle must outrun the micro strip"
    );
    let multi = Scenario::commute_corridor(9)
        .with_population(Population {
            pedestrians: 0,
            vehicles: 1,
            cyclists: 0,
        })
        .run_secs(300.0);
    assert!(
        multi.handoffs.outage_samples < report.handoffs.outage_samples,
        "the macro umbrella must cover the gaps"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let r = Scenario::small_city(77).run_secs(60.0);
        let q = r.aggregate_qos();
        (
            q.sent,
            q.received,
            r.handoffs.total(),
            r.signaling.total_messages(),
            r.events_processed,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce exactly");
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let r = Scenario::small_city(seed).run_secs(60.0);
        r.events_processed
    };
    assert_ne!(run(1), run(2), "seeds must actually matter");
}

#[test]
fn location_tables_track_attached_nodes() {
    let mut b = WorldBuilder::new(WorldConfig::default());
    b.add_domain(DomainSpec::default());
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice],
    );
    let world = b.build();
    let report = world.run(SimDuration::from_secs(20));
    // Location messages flowed and populated tables.
    assert!(report.signaling.location_messages > 5);
}

#[test]
fn channel_accounting_balances() {
    // After a run, every attached node holds exactly one channel; total
    // in-use equals the attached population.
    let scenario = Scenario::small_city(13);
    let world = scenario.build();
    let mut sim = mtnet_sim::Simulator::new(world);
    for i in 0..scenario.population.total() {
        sim.schedule_at(
            SimTime::from_millis(i as u64 * 7),
            Ev::MoveSample(MnId(i as u32)),
        );
    }
    sim.run_until(SimTime::from_secs(30));
    let world = sim.into_model();
    let attached = world.mns.attached.iter().filter(|a| a.is_some()).count();
    let in_use: u32 = world.cells.cells().map(|c| c.channels().in_use()).sum();
    assert_eq!(
        in_use as usize, attached,
        "channels in use must equal attached nodes"
    );
}

#[test]
fn ha_intercepts_and_tunnels() {
    // After the run, the HA must have tunneled most CN traffic (unless the
    // CN route cache bypassed it — so disable notify_cn).
    let mut cfg = WorldConfig::default();
    cfg.notify_cn = false;
    let mut b = WorldBuilder::new(cfg);
    b.add_domain(DomainSpec::default());
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice],
    );
    let world = b.build();
    let mut sim = mtnet_sim::Simulator::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::MoveSample(MnId(0)));
    sim.schedule_at(SimTime::from_millis(50), Ev::Uplink(MnId(0)));
    sim.schedule_at(SimTime::from_millis(500), Ev::FlowNext(0));
    sim.run_until(SimTime::from_secs(10));
    let world = sim.into_model();
    let (_, _, tunneled) = world.ha.counters();
    assert!(tunneled > 100, "HA tunneled CN traffic: {tunneled}");
}

#[test]
fn vehicle_prefers_macro_pedestrian_prefers_micro() {
    let scenario = Scenario::commute_corridor(17);
    let world = scenario.build();
    let mut sim = mtnet_sim::Simulator::new(world);
    for i in 0..scenario.population.total() {
        sim.schedule_at(
            SimTime::from_millis(i as u64),
            Ev::MoveSample(MnId(i as u32)),
        );
    }
    sim.run_until(SimTime::from_secs(20));
    let world = sim.into_model();
    // Population layout: pedestrians first, then cyclists, then vehicles.
    let tier_of = |i: usize| {
        world.mns.attached[i].map(|c| Tier::of_cell(world.cells.cell(c).expect("cell").kind()))
    };
    assert_eq!(tier_of(0), Some(Tier::Micro), "pedestrian in micro tier");
    assert_eq!(
        tier_of(scenario.population.total() - 1),
        Some(Tier::Macro),
        "vehicle in macro tier"
    );
}

#[test]
fn mnld_learns_domain_crossings() {
    let scenario = Scenario::commute_corridor(23);
    let world = scenario.build();
    let duration = SimDuration::from_secs(400);
    // Run manually to inspect final MNLD state.
    let mut sim = mtnet_sim::Simulator::new(world);
    let n = scenario.population.total();
    for i in 0..n {
        sim.schedule_at(
            SimTime::from_millis(i as u64 * 7),
            Ev::MoveSample(MnId(i as u32)),
        );
        sim.schedule_at(
            SimTime::from_millis(100 + i as u64 * 13),
            Ev::Uplink(MnId(i as u32)),
        );
    }
    sim.schedule_at(SimTime::from_secs(5), Ev::Sweep);
    sim.run_until(SimTime::ZERO + duration);
    let world = sim.into_model();
    let (updates, changes, ..) = world.mnld.counters();
    assert!(updates > 0, "MNLD must see RSMC notifications");
    assert!(changes >= 2, "the shuttle crossed domains: {changes}");
}

#[test]
fn signaling_scales_with_population() {
    let small = Scenario::small_city(31)
        .with_population(Population {
            pedestrians: 2,
            vehicles: 0,
            cyclists: 0,
        })
        .run_secs(60.0);
    let large = Scenario::small_city(31)
        .with_population(Population {
            pedestrians: 8,
            vehicles: 0,
            cyclists: 0,
        })
        .run_secs(60.0);
    assert!(
        large.signaling.route_updates > small.signaling.route_updates * 2,
        "route updates scale with nodes: {} vs {}",
        large.signaling.route_updates,
        small.signaling.route_updates
    );
}

#[test]
fn queue_overflow_counted_under_congestion() {
    // Squeeze many video flows through one domain's access links.
    let mut cfg = WorldConfig::default();
    cfg.notify_cn = true;
    let mut b = WorldBuilder::new(cfg);
    b.add_domain(DomainSpec {
        n_micro: 2,
        ..DomainSpec::default()
    });
    for i in 0..20 {
        b.add_mn(
            Box::new(LinearCommute::new(
                Point::new(1300.0 + i as f64, 1500.0),
                Point::new(1700.0 + i as f64, 1500.0),
                1.0,
            )),
            &[FlowKind::Video],
        );
    }
    let report = b.build().run(SimDuration::from_secs(30));
    // 20 video flows ≈ 5 Mbit/s mean through one RSMC: some links and air
    // interfaces will hurt; at minimum traffic flowed and the report is
    // consistent.
    let q = report.aggregate_qos();
    assert!(q.sent > 10_000);
    assert!(
        q.sent as i64 - q.received as i64 >= 0,
        "received cannot exceed sent (dups filtered)"
    );
}

#[test]
fn outage_detaches_and_releases_channel() {
    // One vehicle on a flat-CIP corridor: it will leave micro coverage.
    let scenario = Scenario::commute_corridor(37)
        .with_arch(ArchKind::FlatCellularIp)
        .with_population(Population {
            pedestrians: 0,
            vehicles: 1,
            cyclists: 0,
        });
    let world = scenario.build();
    let mut sim = mtnet_sim::Simulator::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::MoveSample(MnId(0)));
    // Long enough to attach and then drive out of the strip.
    sim.run_until(SimTime::from_secs(120));
    let world = sim.into_model();
    if world.mns.attached[0].is_none() {
        let in_use: u32 = world.cells.cells().map(|c| c.channels().in_use()).sum();
        assert_eq!(in_use, 0, "detached node must not hold a channel");
    }
}

#[test]
fn satellite_overlay_rescues_macro_hole() {
    // Fig 2.1's outermost tier: the rural corridor's middle domain has no
    // macro radio, so terrestrial-only vehicles hit a coverage hole; the
    // satellite overlay absorbs it.
    let terrestrial = Scenario::rural_corridor(42).run_secs(300.0);
    let with_sat = Scenario::rural_corridor(42)
        .with_satellite()
        .run_secs(300.0);
    assert!(
        terrestrial.handoffs.outage_samples > 10,
        "the macro hole must produce outages: {}",
        terrestrial.handoffs.outage_samples
    );
    assert!(
        with_sat.handoffs.outage_samples < terrestrial.handoffs.outage_samples / 5,
        "satellite must absorb the hole: {} vs {}",
        with_sat.handoffs.outage_samples,
        terrestrial.handoffs.outage_samples
    );
    assert!(
        with_sat.aggregate_qos().loss_rate < terrestrial.aggregate_qos().loss_rate,
        "satellite coverage must cut loss"
    );
    assert!(
        with_sat
            .handoffs
            .completed
            .keys()
            .any(|t| t.is_inter_domain()),
        "moving onto/off the satellite is an inter-domain handoff: {:?}",
        with_sat.handoffs.completed
    );
}

#[test]
fn persistent_indices_match_linear_scans() {
    // The O(1) lookup structures this PR introduced must agree exactly
    // with the `iter().position()`-style scans they replaced, for every
    // key that exists — and reject every key that does not.
    let mut b = WorldBuilder::new(WorldConfig::default());
    b.add_domain(DomainSpec::default());
    b.add_domain(DomainSpec {
        center: Point::new(4500.0, 1500.0),
        ..DomainSpec::default()
    });
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice, FlowKind::Web],
    );
    b.add_mn(
        Box::new(
            LinearCommute::new(Point::new(900.0, 1500.0), Point::new(4500.0, 1500.0), 10.0)
                .round_trip(),
        ),
        &[FlowKind::Video],
    );
    let world = b.build();

    // Flow index ≡ position scan.
    for (i, f) in world.flows.iter().enumerate() {
        assert_eq!(world.flow_index.get(&f.flow).copied(), Some(i));
        assert_eq!(
            world.flows.iter().position(|g| g.flow == f.flow),
            world.flow_index.get(&f.flow).copied()
        );
    }
    assert_eq!(world.flow_index.get(&FlowId(999)), None);
    assert_eq!(world.flows.iter().position(|g| g.flow == FlowId(999)), None);

    // Domain indices ≡ position scans over the domain list.
    for (didx, d) in world.domains.iter().enumerate() {
        assert_eq!(
            world.rsmc_addr_domain.get(&d.rsmc.addr()).copied(),
            world
                .domains
                .iter()
                .position(|x| x.rsmc.addr() == d.rsmc.addr())
        );
        assert_eq!(
            world.rsmc_addr_domain.get(&d.rsmc.addr()).copied(),
            Some(didx)
        );
        assert_eq!(
            world.rsmc_node_domain.get(&d.rsmc_node).copied(),
            world
                .domains
                .iter()
                .position(|x| x.rsmc_node == d.rsmc_node)
        );
    }
    assert_eq!(world.rsmc_addr_domain.get(&world.cn_addr), None);

    // MN owner probe ≡ scan over the population's home column.
    for (i, &home) in world.mns.home.iter().enumerate() {
        assert_eq!(
            world.mn_of(home),
            world
                .mns
                .home
                .iter()
                .position(|&h| h == home)
                .map(|p| MnId(p as u32))
        );
        assert_eq!(world.mn_of(home), Some(MnId(i as u32)));
    }
    assert_eq!(world.mn_of(world.cn_addr), None);
    assert_eq!(world.mn_of(world.ha.addr()), None);

    // Dense node/cell tables ≡ the builder's associations, both ways.
    for (cidx, bs) in world.cell_node.iter().enumerate() {
        if let Some(bs) = bs {
            assert_eq!(world.cell_of_node(*bs), Some(CellId(cidx as u32)));
            assert_eq!(world.node_of_cell(CellId(cidx as u32)), *bs);
        }
    }
}

#[test]
fn route_cache_matches_routing_tables() {
    // The RouteCache + prefix resolution in `wired_next_hop` must pick
    // exactly the hops the retired per-node routing tables would have:
    // same Dijkstra, same tie-breaks, same prefix fallbacks.
    let mut b = WorldBuilder::new(WorldConfig::default());
    b.add_domain(DomainSpec::default());
    b.add_domain(DomainSpec {
        center: Point::new(4500.0, 1500.0),
        region: Some(1),
        ..DomainSpec::default()
    });
    b.add_mn(
        Box::new(Stationary::new(Point::new(1500.0, 1500.0))),
        &[FlowKind::Voice],
    );
    let mut world = b.build();
    let tables = world.topo.build_all_routing_tables(&world.prefixes);
    // Probe every (router, destination) pair the simulation can see:
    // node addresses, MN home addresses, and the CN/HA endpoints.
    let mut dsts: Vec<Addr> = (0..world.topo.node_count() as u32)
        .map(|n| world.topo.addr_of(NodeId(n)))
        .collect();
    dsts.extend(world.mns.home.iter().copied());
    dsts.push(world.cn_addr);
    for node in 0..world.topo.node_count() as u32 {
        let node = NodeId(node);
        for &dst in &dsts {
            assert_eq!(
                world.wired_next_hop(node, dst),
                tables[&node].lookup(dst),
                "divergence at {node} -> {dst:?}"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

fn faulted_city_spec() -> crate::spec::ScenarioSpec {
    use crate::spec::{CellOutage, FaultSpec, LinkFlap, RsmcFailover};
    crate::spec::ScenarioSpec::small_city().with_faults(FaultSpec {
        cell_outages: vec![CellOutage {
            cell: 1,
            start_s: 3.0,
            end_s: 8.0,
        }],
        link_flaps: vec![LinkFlap {
            domain: 0,
            start_s: 2.0,
            period_s: 5.0,
            duty: 0.4,
            jitter_s: 1.0,
            count: 3,
        }],
        rsmc_failovers: vec![RsmcFailover {
            domain: 2,
            at_s: 10.0,
            takeover_s: Some(4.0),
        }],
        eclipses: Vec::new(),
    })
}

#[test]
fn fault_plan_is_sorted_with_paired_alternating_flap_edges() {
    let world = faulted_city_spec().build(42);
    let plan = &world.fault_plan;
    assert!(!plan.is_empty());
    for w in plan.windows(2) {
        assert!(w[0].0 <= w[1].0, "plan not time-sorted: {plan:?}");
    }
    // Per flapped link, the edge stream alternates down/up starting with
    // down — strictly ordered, so every down is paired with its restore.
    let mut last: Option<(SimTime, bool)> = None;
    let mut edges = 0;
    for (t, action) in plan {
        let FaultAction::Link { down, .. } = action else {
            continue;
        };
        edges += 1;
        if let Some((pt, pdown)) = last {
            assert!(pt < *t, "flap edges must be strictly ordered");
            assert_ne!(pdown, *down, "flap edges must alternate");
        } else {
            assert!(*down, "a flap starts with a down edge");
        }
        last = Some((*t, *down));
    }
    assert_eq!(edges, 6, "count=3 cycles produce 3 down/up pairs");
    assert_eq!(last.map(|(_, d)| d), Some(false), "last edge restores");
    // Jitter draws are a pure function of the world seed.
    let again = faulted_city_spec().build(42);
    let times: Vec<SimTime> = plan.iter().map(|(t, _)| *t).collect();
    let times2: Vec<SimTime> = again.fault_plan.iter().map(|(t, _)| *t).collect();
    assert_eq!(times, times2);
}

#[test]
fn faults_fire_and_are_fully_accounted() {
    let report = faulted_city_spec()
        .with_duration_s(20.0)
        .build(42)
        .run(SimDuration::from_secs(20));
    let f = &report.faults;
    assert_eq!(f.cell_transitions, 2, "outage window: down + restore");
    assert_eq!(f.link_transitions, 6, "3 flap cycles, every edge applied");
    assert_eq!(f.rsmc_kills, 1);
    assert_eq!(f.rsmc_takeovers, 1);
    assert_eq!(f.eclipse_transitions, 0);
    assert!(
        f.recovery_latency_ms.count() > 0,
        "restores must arm recovery measurements"
    );
    assert!(
        report
            .fingerprint()
            .contains("faults: cells=2 links=6 kills=1"),
        "fault section in fingerprint:\n{}",
        report.fingerprint()
    );
}

#[test]
fn downed_macro_reroutes_or_drops_but_never_serves() {
    // While domain 0's macro (cell 1) is down, no MN may be attached to
    // it; after the restore the cell serves again. Run a vehicle that
    // prefers the macro tier.
    use crate::spec::{CellOutage, FaultSpec};
    let spec = crate::spec::ScenarioSpec::small_city()
        .with_population(0, 0, 2)
        .with_faults(FaultSpec {
            cell_outages: vec![CellOutage {
                cell: 1,
                start_s: 2.0,
                end_s: 40.0,
            }],
            ..FaultSpec::default()
        })
        .with_duration_s(60.0);
    let report = spec.build(7).run(SimDuration::from_secs(60));
    assert_eq!(report.faults.cell_transitions, 2);
    // The world survives: traffic still flows (micro fallback), and the
    // outage window attributes its data drops.
    assert!(report.aggregate_qos().received > 0, "world kept serving");
}

// ----------------------------------------------------------------------
// Sharded execution (conservative time-window parallelism)
// ----------------------------------------------------------------------

#[test]
fn sharded_run_is_byte_identical_to_sequential() {
    let spec = crate::spec::ScenarioSpec::small_city().with_duration_s(12.0);
    let duration = SimDuration::from_secs_f64(12.0);
    let sequential = spec.build(42).run(duration).fingerprint();
    // Requested counts above the two ownership groups clamp; all must
    // reproduce the sequential fingerprint bit for bit.
    for shards in [2u32, 4, 8] {
        let sharded = run_sharded(|| spec.build(42), duration, shards).fingerprint();
        assert_eq!(sequential, sharded, "shards={shards}");
    }
    // shards <= 1 falls through to the sequential engine.
    let one = run_sharded(|| spec.build(42), duration, 1).fingerprint();
    assert_eq!(sequential, one);
}

#[test]
fn sharded_run_is_byte_identical_under_faults() {
    // Fault edges are replicated on every shard: link state, cell state
    // and every resilience metric must still merge exactly.
    let spec = faulted_city_spec().with_duration_s(20.0);
    let duration = SimDuration::from_secs(20);
    let sequential = spec.build(42).run(duration).fingerprint();
    let sharded = run_sharded(|| spec.build(42), duration, 2).fingerprint();
    assert_eq!(sequential, sharded);
    assert!(
        sequential.contains("faults: cells=2"),
        "fault machinery fired in the comparison:\n{sequential}"
    );
}

#[test]
fn spec_shards_knob_selects_the_parallel_engine() {
    let spec = crate::spec::ScenarioSpec::small_city().with_duration_s(10.0);
    let sequential = spec.run(42).fingerprint();
    let sharded = spec.clone().with_shards(4).run(42).fingerprint();
    assert_eq!(sequential, sharded);
}
