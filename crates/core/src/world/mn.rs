//! Structure-of-arrays storage for the mobile-node population.
//!
//! A metro-scale world holds ~10^6 mobile nodes, of which only a small
//! working set is hot at any instant (the nodes whose move sample,
//! uplink tick or packet is being processed). The per-node state
//! therefore lives in parallel columns — one `Vec` per field, indexed by
//! the dense [`MnId`] — following the `CellMap` SoA lane idiom: each
//! handler touches only the columns it needs, so a move sample streams
//! through `traj`/`rng`/`attached` without dragging the Mobile IP state
//! machine or the CIP timers through the cache.
//!
//! Two further rules keep the table a memory diet rather than just a
//! transpose:
//!
//! * **Inactive nodes carry only their row.** Every per-MN map the world
//!   used to key by *home address* (CN route cache, MNLD, RSMC auth
//!   registry) is either a dense column here or epoch-tagged per-row
//!   state — nothing grows O(subscribers) on the side.
//! * **Addresses are arithmetic.** Home addresses are allocated densely
//!   (250 per /24 starting at 10.0.2.1), so `MnId` ↔ `Addr` conversion
//!   is a handful of integer ops in both directions — no map, no 256-slot
//!   octet index, no per-/24 cap.

use super::PendingAttach;
use crate::messages::MnId;
use mtnet_cellularip::MnCipState;
use mtnet_mobileip::MobileNode;
use mtnet_mobility::Trajectory;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use mtnet_sim::{RngStream, SimTime};

/// Home addresses per /24 subnet (the last octet runs 1..=250, matching
/// the historical single-subnet allocator bit for bit).
const MN_PER_SUBNET: u32 = 250;

/// First home address, 10.0.2.1 — subnet octets count up from here.
const MN_BASE: u32 = (10 << 24) | (2 << 8) | 1;

/// Largest population whose home addresses fit the default 10.0.0.0/16
/// home prefix (subnet octet pairs 10.0.2.x .. 10.0.255.x). Beyond this
/// the builder widens the home prefix to 10.0.0.0/8.
pub(crate) const MAX_SLASH16_MNS: usize = 254 * MN_PER_SUBNET as usize;

/// Home address of the `idx`-th mobile node. Dense: 250 nodes per /24,
/// subnets counting up from 10.0.2.0/24 (identical to the historical
/// allocator for the first 250 nodes).
pub(crate) fn home_addr(idx: u32) -> Addr {
    let subnet = 2 + idx / MN_PER_SUBNET;
    Addr::from_octets(
        10,
        (subnet >> 8) as u8,
        (subnet & 0xFF) as u8,
        (idx % MN_PER_SUBNET) as u8 + 1,
    )
}

/// Inverse of [`home_addr`]: the node owning `addr` in a population of
/// `count`, or `None` for any address outside the allocated range. Pure
/// arithmetic — this runs several times per forwarded packet.
pub(crate) fn mn_of_home(addr: Addr, count: usize) -> Option<MnId> {
    let off = addr.0.wrapping_sub(MN_BASE);
    let rem = off & 0xFF;
    if rem >= MN_PER_SUBNET {
        return None; // last octet outside 1..=250, or below the base
    }
    let idx = (u64::from(off) >> 8) * u64::from(MN_PER_SUBNET) + u64::from(rem);
    (idx < count as u64).then(|| MnId(idx as u32))
}

/// A generation-checked reference to a table row. Long-lived references
/// (flow → source node) hold one of these instead of a bare [`MnId`]: if
/// a future world recycles rows, a stale handle resolves to `None`
/// instead of silently reading the successor's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MnHandle {
    pub(crate) id: MnId,
    gen: u32,
}

/// The mobile-node population, one column per field (see module docs).
///
/// Columns are `pub(crate)` and accessed positionally
/// (`mns.attached[i]`); distinct columns borrow independently, which is
/// exactly what the split-borrow sites (trajectory + its RNG stream)
/// need.
#[derive(Default)]
pub(crate) struct MnTable {
    pub(crate) home: Vec<Addr>,
    pub(crate) traj: Vec<Trajectory>,
    pub(crate) rng: Vec<RngStream>,
    pub(crate) mip: Vec<MobileNode>,
    pub(crate) cip: Vec<MnCipState>,
    pub(crate) attached: Vec<Option<CellId>>,
    pub(crate) pending: Vec<Option<PendingAttach>>,
    /// Cell the node most recently left, for ping-pong detection.
    pub(crate) prev_cell: Vec<Option<(CellId, SimTime)>>,
    /// Cell whose channel pool this node currently occupies.
    pub(crate) channel_cell: Vec<Option<CellId>>,
    pub(crate) last_paging_update: Vec<SimTime>,
    /// True when the node sources at least one traffic flow. Under
    /// `WorldConfig::idle_camping` only these nodes go through channel
    /// admission — the idle majority camps without holding a channel.
    pub(crate) has_flow: Vec<bool>,
    /// `(domain index, RSMC epoch)` pairs this node holds a valid
    /// authentication for — at most one entry per visited domain. This
    /// replaces the RSMCs' O(subscribers) `HashSet<Addr>` registries:
    /// the RSMC only publishes its epoch (bumped on flush), the proof of
    /// authentication rides on the node's own row.
    pub(crate) auth: Vec<Vec<(u32, u32)>>,
    /// Row generations backing [`MnHandle`] checks.
    gen: Vec<u32>,
}

impl MnTable {
    pub(crate) fn len(&self) -> usize {
        self.home.len()
    }

    /// Appends a row; the caller supplies the identity/state columns,
    /// the bookkeeping columns start empty.
    pub(crate) fn push(
        &mut self,
        home: Addr,
        traj: Trajectory,
        rng: RngStream,
        mip: MobileNode,
        cip: MnCipState,
    ) -> MnId {
        let id = MnId(self.len() as u32);
        self.home.push(home);
        self.traj.push(traj);
        self.rng.push(rng);
        self.mip.push(mip);
        self.cip.push(cip);
        self.attached.push(None);
        self.pending.push(None);
        self.prev_cell.push(None);
        self.channel_cell.push(None);
        self.last_paging_update.push(SimTime::ZERO);
        self.has_flow.push(false);
        self.auth.push(Vec::new());
        self.gen.push(0);
        id
    }

    /// A generation-checked handle to row `id`.
    pub(crate) fn handle(&self, id: MnId) -> MnHandle {
        MnHandle {
            id,
            gen: self.gen[id.0 as usize],
        }
    }

    /// The row a handle refers to, or `None` if the row was recycled
    /// since the handle was taken.
    pub(crate) fn resolve(&self, h: MnHandle) -> Option<MnId> {
        (self.gen.get(h.id.0 as usize) == Some(&h.gen)).then_some(h.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_addresses_match_the_legacy_single_subnet_allocator() {
        for idx in 0..250u32 {
            assert_eq!(
                home_addr(idx),
                Addr::from_octets(10, 0, 2, (idx % 250) as u8 + 1),
                "idx {idx}"
            );
        }
    }

    #[test]
    fn home_addr_round_trips_at_metro_scale() {
        let count = 1_000_000usize;
        for idx in [0u32, 1, 249, 250, 251, 63_499, 63_500, 999_999] {
            let addr = home_addr(idx);
            assert_eq!(
                mn_of_home(addr, count),
                Some(MnId(idx)),
                "idx {idx} -> {addr}"
            );
        }
    }

    #[test]
    fn foreign_addresses_resolve_to_none() {
        let count = 1_000_000usize;
        for s in [
            "10.0.0.1", // the HA
            "10.0.2.0", // subnet base, last octet 0 is never allocated
            "1.0.0.1",  // internet core
            "20.0.0.1", // an RSMC
            "30.0.0.2", // the CN
            "21.3.0.1", // an upper BS
            "9.255.255.255",
        ] {
            let addr: Addr = s.parse().unwrap();
            assert_eq!(mn_of_home(addr, count), None, "{s}");
        }
        // In range only while the population covers it.
        assert_eq!(mn_of_home(home_addr(250), 250), None);
        assert_eq!(mn_of_home(home_addr(250), 251), Some(MnId(250)));
    }

    #[test]
    fn slash16_capacity_boundary() {
        // The last /16-resident address is 10.0.255.250.
        let last = home_addr(MAX_SLASH16_MNS as u32 - 1);
        assert_eq!(last, "10.0.255.250".parse().unwrap());
        let first_outside = home_addr(MAX_SLASH16_MNS as u32);
        assert_eq!(first_outside, "10.1.0.1".parse().unwrap());
    }

    #[test]
    fn handles_are_generation_checked() {
        let mut t = MnTable::default();
        let id = t.push(
            home_addr(0),
            Trajectory::new(Box::new(mtnet_mobility::Stationary::new(
                mtnet_mobility::Point::new(0.0, 0.0),
            ))),
            RngStream::from_seed(1),
            MobileNode::new(home_addr(0), "10.0.0.1".parse().unwrap()),
            MnCipState::new(mtnet_cellularip::CipTimers::default(), SimTime::ZERO),
        );
        let h = t.handle(id);
        assert_eq!(t.resolve(h), Some(id));
        // A bumped generation invalidates outstanding handles.
        t.gen[id.0 as usize] += 1;
        assert_eq!(t.resolve(h), None);
    }
}
