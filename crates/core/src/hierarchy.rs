//! The multi-tier base-station hierarchy and its domains (§3.1, Fig 3.1).
//!
//! Macro cells form a small tree (the paper's example: `R3` on the upper
//! level, `R1`/`R2` below it); micro cells hang under macro cells (and may
//! chain under other micro cells — "micro-cells may be located on same
//! level or distinguished on more than one levels"). A **domain** is the
//! coverage of one macro-tier subtree (`R1`'s subtree is one domain,
//! `R2`'s another); inter-domain handoffs are classified by whether the two
//! domains share an upper-layer BS (Fig 3.2) or not (Fig 3.3).

use crate::tier::Tier;
use mtnet_radio::CellId;
use mtnet_sim::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a domain (one macro-tier coverage area).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// One domain: a top macro BS plus everything under it.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The domain id.
    pub id: DomainId,
    /// The domain's top macro cell (`R1`/`R2` in Fig 3.1).
    pub top_macro: CellId,
    /// The shared upper-layer BS above this domain, if any (`R3`).
    pub upper: Option<CellId>,
}

#[derive(Debug, Clone, Copy)]
struct CellEntry {
    tier: Tier,
    parent: Option<CellId>,
    domain: Option<DomainId>,
}

/// The assembled hierarchy.
///
/// ```
/// use mtnet_core::hierarchy::Hierarchy;
/// use mtnet_core::tier::Tier;
/// use mtnet_radio::CellId;
///
/// // Fig 3.1: R3 over R1 and R2; micros A,B under R1.
/// let mut h = Hierarchy::new();
/// let r3 = h.add_upper_macro(CellId(100));
/// let d1 = h.add_domain(CellId(101), Some(r3));
/// let a = h.add_micro(CellId(1), CellId(101));
/// let _b = h.add_micro(CellId(2), a);
/// assert_eq!(h.domain_of(CellId(2)), Some(d1));
/// assert_eq!(h.chain_up(CellId(2)), vec![CellId(2), CellId(1), CellId(101), CellId(100)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    cells: FxHashMap<CellId, CellEntry>,
    domains: Vec<Domain>,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Hierarchy::default()
    }

    /// Registers an upper-layer macro BS (the paper's `R3`) that sits above
    /// one or more domains but belongs to none.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell ids.
    pub fn add_upper_macro(&mut self, cell: CellId) -> CellId {
        self.insert(
            cell,
            CellEntry {
                tier: Tier::Macro,
                parent: None,
                domain: None,
            },
        );
        cell
    }

    /// Creates a domain rooted at `top_macro`, optionally under a shared
    /// upper BS.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell ids or an unknown `upper`.
    pub fn add_domain(&mut self, top_macro: CellId, upper: Option<CellId>) -> DomainId {
        if let Some(u) = upper {
            assert!(self.cells.contains_key(&u), "unknown upper BS {u}");
        }
        let id = DomainId(self.domains.len() as u32);
        self.insert(
            top_macro,
            CellEntry {
                tier: Tier::Macro,
                parent: upper,
                domain: Some(id),
            },
        );
        self.domains.push(Domain {
            id,
            top_macro,
            upper,
        });
        id
    }

    /// Adds a deeper-level macro cell under an existing macro of the same
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown, not macro-tier, or outside any
    /// domain.
    pub fn add_macro_under(&mut self, cell: CellId, parent: CellId) -> CellId {
        let p = self.cells.get(&parent).expect("unknown parent");
        assert_eq!(p.tier, Tier::Macro, "macro cells attach under macro cells");
        let domain = p.domain.expect("parent must belong to a domain");
        self.insert(
            cell,
            CellEntry {
                tier: Tier::Macro,
                parent: Some(parent),
                domain: Some(domain),
            },
        );
        cell
    }

    /// Adds a micro cell under a macro or micro parent of some domain.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown or outside any domain.
    pub fn add_micro(&mut self, cell: CellId, parent: CellId) -> CellId {
        let p = self.cells.get(&parent).expect("unknown parent");
        let domain = p.domain.expect("parent must belong to a domain");
        self.insert(
            cell,
            CellEntry {
                tier: Tier::Micro,
                parent: Some(parent),
                domain: Some(domain),
            },
        );
        cell
    }

    fn insert(&mut self, cell: CellId, entry: CellEntry) {
        let prev = self.cells.insert(cell, entry);
        assert!(prev.is_none(), "duplicate cell {cell}");
    }

    /// True if the cell is registered.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.contains_key(&cell)
    }

    /// The tier of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is unknown.
    pub fn tier_of(&self, cell: CellId) -> Tier {
        self.cells[&cell].tier
    }

    /// The parent BS of a cell (None for roots).
    pub fn parent(&self, cell: CellId) -> Option<CellId> {
        self.cells.get(&cell).and_then(|e| e.parent)
    }

    /// The domain a cell belongs to (None for upper-layer BSs).
    pub fn domain_of(&self, cell: CellId) -> Option<DomainId> {
        self.cells.get(&cell).and_then(|e| e.domain)
    }

    /// Domain metadata.
    ///
    /// # Panics
    ///
    /// Panics if the domain id is unknown.
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id.0 as usize]
    }

    /// All domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The chain from a cell up to the hierarchy root, inclusive — the
    /// propagation path of a Location Message ("MNs need to send a Location
    /// Message to the most upper layer of macro-tier", §3.1).
    ///
    /// # Panics
    ///
    /// Panics if the cell is unknown.
    pub fn chain_up(&self, cell: CellId) -> Vec<CellId> {
        assert!(self.contains(cell), "unknown cell {cell}");
        let mut chain = vec![cell];
        let mut cur = cell;
        while let Some(p) = self.parent(cur) {
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// True if the two domains share an upper-layer BS — distinguishing
    /// Fig 3.2 (same upper) from Fig 3.3 (different upper) inter-domain
    /// handoffs.
    pub fn same_upper(&self, a: DomainId, b: DomainId) -> bool {
        match (self.domain(a).upper, self.domain(b).upper) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All cells of a domain, in id order.
    pub fn cells_in_domain(&self, id: DomainId) -> Vec<CellId> {
        let mut v: Vec<CellId> = self
            .cells
            .iter()
            .filter(|(_, e)| e.domain == Some(id))
            .map(|(c, _)| *c)
            .collect();
        v.sort();
        v
    }

    /// Total registered cells (including upper-layer BSs).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 3.1:
    /// R3(100) over R1(101) and R2(102);
    /// micros A(1)←B(2),C(3) under R1; D(4)←E(5),F(6) under R2.
    fn fig31() -> (Hierarchy, DomainId, DomainId) {
        let mut h = Hierarchy::new();
        let r3 = h.add_upper_macro(CellId(100));
        let d1 = h.add_domain(CellId(101), Some(r3));
        let d2 = h.add_domain(CellId(102), Some(r3));
        h.add_micro(CellId(1), CellId(101)); // A
        h.add_micro(CellId(2), CellId(1)); // B under A
        h.add_micro(CellId(3), CellId(1)); // C under A
        h.add_micro(CellId(4), CellId(102)); // D
        h.add_micro(CellId(5), CellId(4)); // E
        h.add_micro(CellId(6), CellId(4)); // F
        (h, d1, d2)
    }

    #[test]
    fn chain_up_matches_paper_example() {
        let (h, ..) = fig31();
        // X in B: location propagates B → A → R1 → R3.
        assert_eq!(
            h.chain_up(CellId(2)),
            vec![CellId(2), CellId(1), CellId(101), CellId(100)]
        );
    }

    #[test]
    fn domains_and_tiers() {
        let (h, d1, d2) = fig31();
        assert_eq!(h.domain_of(CellId(2)), Some(d1));
        assert_eq!(h.domain_of(CellId(6)), Some(d2));
        assert_eq!(h.domain_of(CellId(100)), None, "upper BS is domainless");
        assert_eq!(h.tier_of(CellId(2)), Tier::Micro);
        assert_eq!(h.tier_of(CellId(101)), Tier::Macro);
    }

    #[test]
    fn same_upper_detection() {
        let (mut h, d1, d2) = fig31();
        assert!(h.same_upper(d1, d2), "R1 and R2 share R3");
        // A third, unrelated domain without an upper BS.
        let d3 = h.add_domain(CellId(103), None);
        assert!(!h.same_upper(d1, d3));
        assert!(!h.same_upper(d3, d3), "no upper at all");
    }

    #[test]
    fn cells_in_domain_sorted() {
        let (h, d1, _) = fig31();
        assert_eq!(
            h.cells_in_domain(d1),
            vec![CellId(1), CellId(2), CellId(3), CellId(101)]
        );
    }

    #[test]
    fn deeper_macro_levels() {
        let mut h = Hierarchy::new();
        let d = h.add_domain(CellId(10), None);
        h.add_macro_under(CellId(11), CellId(10));
        h.add_micro(CellId(1), CellId(11));
        assert_eq!(h.domain_of(CellId(11)), Some(d));
        assert_eq!(
            h.chain_up(CellId(1)),
            vec![CellId(1), CellId(11), CellId(10)]
        );
    }

    #[test]
    fn domain_metadata() {
        let (h, d1, _) = fig31();
        let dom = h.domain(d1);
        assert_eq!(dom.top_macro, CellId(101));
        assert_eq!(dom.upper, Some(CellId(100)));
        assert_eq!(h.domains().len(), 2);
        assert_eq!(h.len(), 9);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_rejected() {
        let (mut h, ..) = fig31();
        h.add_micro(CellId(2), CellId(1));
    }

    #[test]
    #[should_panic(expected = "macro cells attach under macro")]
    fn macro_under_micro_rejected() {
        let (mut h, ..) = fig31();
        h.add_macro_under(CellId(50), CellId(1));
    }

    #[test]
    fn display_ids() {
        assert_eq!(DomainId(1).to_string(), "domain1");
    }
}
