//! The Resource Switching Management Center (§4, Fig 4.1).
//!
//! "RSMC is a control center that combines gateway router and cache of BS,
//! which can store the location information of MN, forward data packets to
//! MN, and authenticate identity of MN. […] RSMC will update the location
//! information of MN after got this packet, and send a message to notify
//! HA and CN."
//!
//! In the reproduction the RSMC *is* the domain's Cellular IP gateway node;
//! this type holds the added value over a plain gateway: the combined
//! location cache (outliving fine-grained routing caches), the
//! authentication epoch, and the HA/CN notification generator.
//!
//! Authentication is **epoch-tagged** rather than registry-backed: the
//! RSMC publishes an [`epoch`](Rsmc::epoch) that bumps on every
//! [`flush`](Rsmc::flush), and each mobile node records which
//! `(domain, epoch)` it last authenticated against on its own table row.
//! The observable behaviour is identical to the old per-RSMC
//! `HashSet<Addr>` registry (authenticate once per node per domain,
//! re-authenticate after a crash/failover flush) but the RSMC itself
//! holds O(1) auth state instead of O(subscribers-ever-seen).

use crate::messages::MtMessage;
use mtnet_cellularip::SoftStateCache;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use mtnet_sim::{SimDuration, SimTime};

/// Per-domain RSMC state.
#[derive(Debug)]
pub struct Rsmc {
    addr: Addr,
    /// Combined gateway/BS location cache: MN → serving cell. Lifetime is
    /// long (paging-scale), so the RSMC can still place a node whose
    /// routing caches lapsed.
    location: SoftStateCache<Addr, CellId>,
    /// Authentication epoch; bumped on flush so outstanding per-node
    /// authentications (tagged with the old epoch) become invalid.
    auth_epoch: u32,
    /// Correspondents to notify per MN is decided by the caller; the RSMC
    /// counts the notifications it generates.
    notifications_sent: u64,
    auth_performed: u64,
    packets_forwarded: u64,
}

impl Rsmc {
    /// Location-cache lifetime: long enough to outlive routing caches (it
    /// doubles as the paging anchor).
    pub const LOCATION_LIFETIME: SimDuration = SimDuration::from_secs(180);

    /// One-time authentication processing delay (identity verification).
    pub const AUTH_DELAY: SimDuration = SimDuration::from_millis(5);

    /// Creates the RSMC at the given (gateway) address.
    pub fn new(addr: Addr) -> Self {
        Rsmc {
            addr,
            location: SoftStateCache::new(Self::LOCATION_LIFETIME),
            auth_epoch: 0,
            notifications_sent: 0,
            auth_performed: 0,
            packets_forwarded: 0,
        }
    }

    /// The RSMC's address (also the domain's care-of address).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The current authentication epoch. A node whose recorded epoch for
    /// this domain differs must (re-)authenticate and charge
    /// [`Rsmc::AUTH_DELAY`].
    pub fn epoch(&self) -> u32 {
        self.auth_epoch
    }

    /// Counts one identity verification actually performed (the caller
    /// decided the node's recorded epoch was stale). Returns the
    /// processing delay to charge.
    pub fn note_auth_performed(&mut self) -> SimDuration {
        self.auth_performed += 1;
        Self::AUTH_DELAY
    }

    /// Processes a route-update arrival for `mn` now served by `cell`
    /// (§4: "RSMC will update the location information of MN after got
    /// this packet, and send a message to notify HA and CN").
    ///
    /// Returns the notifications to transmit — empty when the serving cell
    /// did not change (movement inside the same cell needs no notify).
    pub fn on_route_update(
        &mut self,
        mn: Addr,
        cell: CellId,
        now: SimTime,
        notify_targets: usize,
    ) -> Vec<MtMessage> {
        let prev = self.location.get_even_stale(&mn).copied();
        self.location.refresh(mn, cell, now);
        if prev == Some(cell) {
            return Vec::new();
        }
        self.notifications_sent += notify_targets as u64;
        vec![
            MtMessage::RsmcNotify {
                mn,
                rsmc: self.addr
            };
            notify_targets
        ]
    }

    /// Crash/failover flush (fault injection): the RSMC loses its combined
    /// location cache and invalidates every outstanding authentication
    /// (by bumping the epoch), exactly as a cold standby taking over
    /// would start. The statistics counters survive — they describe the
    /// run, not the box.
    pub fn flush(&mut self) {
        self.location.clear();
        self.auth_epoch += 1;
    }

    /// The cell currently (or recently) serving `mn`, if the location
    /// cache still holds it.
    pub fn locate(&self, mn: Addr, now: SimTime) -> Option<CellId> {
        self.location.get(&mn, now).copied()
    }

    /// Counts a data packet forwarded toward an MN.
    pub fn count_forwarded(&mut self) {
        self.packets_forwarded += 1;
    }

    /// Evicts expired location entries; returns how many.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        self.location.sweep(now)
    }

    /// Number of nodes with live location entries at `now`.
    pub fn tracked(&self, now: SimTime) -> usize {
        self.location.live_count(now)
    }

    /// `(notifications, authentications, packets_forwarded)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.notifications_sent,
            self.auth_performed,
            self.packets_forwarded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn rsmc() -> Rsmc {
        Rsmc::new(addr("20.0.0.1"))
    }

    #[test]
    fn auth_epoch_drives_once_per_mn_semantics() {
        let mut r = rsmc();
        assert_eq!(r.epoch(), 0);
        // A node with a stale recorded epoch authenticates and is charged.
        assert_eq!(r.note_auth_performed(), Rsmc::AUTH_DELAY);
        assert_eq!(r.counters().1, 1);
        // The epoch is stable across ordinary operation, so a node whose
        // recorded epoch matches skips authentication entirely (the world
        // compares epochs and never calls note_auth_performed again).
        assert_eq!(r.epoch(), 0);
    }

    #[test]
    fn route_update_notifies_on_cell_change_only() {
        let mut r = rsmc();
        let mn = addr("10.0.2.1");
        let n1 = r.on_route_update(mn, CellId(3), SimTime::ZERO, 2);
        assert_eq!(n1.len(), 2, "HA + CN notified on first sighting");
        assert!(matches!(n1[0], MtMessage::RsmcNotify { .. }));
        // Same cell refresh: silent.
        let n2 = r.on_route_update(mn, CellId(3), SimTime::from_secs(1), 2);
        assert!(n2.is_empty());
        // Cell change: notify again.
        let n3 = r.on_route_update(mn, CellId(4), SimTime::from_secs(2), 2);
        assert_eq!(n3.len(), 2);
        assert_eq!(r.counters().0, 4);
    }

    #[test]
    fn location_cache_answers_and_expires() {
        let mut r = rsmc();
        let mn = addr("10.0.2.1");
        r.on_route_update(mn, CellId(3), SimTime::ZERO, 0);
        assert_eq!(r.locate(mn, SimTime::from_secs(100)), Some(CellId(3)));
        assert_eq!(r.locate(mn, SimTime::from_secs(180)), None, "expired");
        assert_eq!(r.tracked(SimTime::from_secs(100)), 1);
        assert_eq!(r.sweep(SimTime::from_secs(180)), 1);
    }

    #[test]
    fn flush_loses_state_but_not_history() {
        let mut r = rsmc();
        let mn = addr("10.0.2.1");
        r.note_auth_performed();
        r.on_route_update(mn, CellId(3), SimTime::ZERO, 2);
        let epoch_before = r.epoch();
        r.flush();
        assert_ne!(r.epoch(), epoch_before, "outstanding auths invalidated");
        assert_eq!(r.locate(mn, SimTime::ZERO), None, "location cache gone");
        assert_eq!(r.counters().0, 2, "notification history survives");
        assert_eq!(r.counters().1, 1, "auth history survives");
        // The standby re-learns from scratch: next sighting notifies again.
        assert_eq!(r.note_auth_performed(), Rsmc::AUTH_DELAY);
        assert_eq!(r.on_route_update(mn, CellId(3), SimTime::ZERO, 2).len(), 2);
    }

    #[test]
    fn forward_counter() {
        let mut r = rsmc();
        r.count_forwarded();
        r.count_forwarded();
        assert_eq!(r.counters().2, 2);
    }

    #[test]
    fn addr_accessor() {
        assert_eq!(rsmc().addr(), addr("20.0.0.1"));
    }
}
