//! The Mobile Node Location Database (Fig 4.1's MNLD): the home network's
//! coarse, domain-granularity view of where every subscriber is.
//!
//! The MNLD complements the HA's binding cache: bindings are per care-of
//! address and expire quickly; the MNLD keeps the last-known domain and
//! RSMC for each node plus movement history, which the home network uses
//! to answer "which domain should this location query go to" and which the
//! experiments use to count inter-domain movements.
//!
//! Records are keyed by the dense [`MnId`] and stored in a flat column
//! that grows to the highest id ever reported — an `Option<MnldEntry>`
//! row per node instead of the former `HashMap<Addr, _>`: at metro scale
//! (10^6 subscribers) the column is one contiguous ~24 MB allocation with
//! O(1) branch-free probes, and a node that never roams costs exactly its
//! (empty) row.

use crate::hierarchy::DomainId;
use crate::messages::MnId;
use mtnet_net::Addr;
use mtnet_sim::SimTime;

/// One MNLD record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MnldEntry {
    /// The domain last reported for the node.
    pub domain: DomainId,
    /// The RSMC serving that domain.
    pub rsmc: Addr,
    /// When the record was last updated.
    pub updated_at: SimTime,
}

/// The location database.
#[derive(Debug, Default)]
pub struct Mnld {
    /// Dense per-node records, indexed by [`MnId`]; grows on demand.
    entries: Vec<Option<MnldEntry>>,
    tracked: usize,
    updates: u64,
    domain_changes: u64,
    queries: u64,
    query_hits: u64,
}

impl Mnld {
    /// Creates an empty database.
    pub fn new() -> Self {
        Mnld::default()
    }

    /// Records that `mn` is now in `domain` behind `rsmc`. Returns `true`
    /// if this was a *domain change* (an inter-domain movement).
    pub fn update(&mut self, mn: MnId, domain: DomainId, rsmc: Addr, now: SimTime) -> bool {
        self.updates += 1;
        let idx = mn.0 as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        let slot = &mut self.entries[idx];
        let changed = slot.is_none_or(|e| e.domain != domain);
        if changed {
            self.domain_changes += 1;
        }
        if slot.is_none() {
            self.tracked += 1;
        }
        *slot = Some(MnldEntry {
            domain,
            rsmc,
            updated_at: now,
        });
        changed
    }

    /// Looks up the last-known location of `mn`.
    pub fn query(&mut self, mn: MnId) -> Option<MnldEntry> {
        self.queries += 1;
        let hit = self.entries.get(mn.0 as usize).copied().flatten();
        if hit.is_some() {
            self.query_hits += 1;
        }
        hit
    }

    /// Read-only peek without statistics (internal checks).
    pub fn peek(&self, mn: MnId) -> Option<&MnldEntry> {
        self.entries.get(mn.0 as usize).and_then(Option::as_ref)
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// `(updates, domain_changes, queries, query_hits)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.updates,
            self.domain_changes,
            self.queries,
            self.query_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn first_update_is_a_domain_change() {
        let mut m = Mnld::new();
        assert!(m.update(MnId(0), DomainId(0), addr("20.0.0.1"), SimTime::ZERO));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn same_domain_refresh_is_not_a_change() {
        let mut m = Mnld::new();
        m.update(MnId(0), DomainId(0), addr("20.0.0.1"), SimTime::ZERO);
        assert!(!m.update(
            MnId(0),
            DomainId(0),
            addr("20.0.0.1"),
            SimTime::from_secs(5)
        ));
        assert!(m.update(
            MnId(0),
            DomainId(1),
            addr("20.1.0.1"),
            SimTime::from_secs(9)
        ));
        assert_eq!(m.counters().1, 2, "two domain changes");
    }

    #[test]
    fn query_statistics() {
        let mut m = Mnld::new();
        m.update(MnId(0), DomainId(0), addr("20.0.0.1"), SimTime::ZERO);
        let e = m.query(MnId(0)).unwrap();
        assert_eq!(e.domain, DomainId(0));
        assert_eq!(e.rsmc, addr("20.0.0.1"));
        assert!(m.query(MnId(99)).is_none());
        assert_eq!(m.counters(), (1, 1, 2, 1));
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = Mnld::new();
        m.update(MnId(0), DomainId(0), addr("20.0.0.1"), SimTime::ZERO);
        assert!(m.peek(MnId(0)).is_some());
        assert_eq!(m.counters().2, 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn updated_at_tracks_latest() {
        let mut m = Mnld::new();
        m.update(MnId(0), DomainId(0), addr("20.0.0.1"), SimTime::ZERO);
        m.update(
            MnId(0),
            DomainId(0),
            addr("20.0.0.1"),
            SimTime::from_secs(7),
        );
        assert_eq!(m.peek(MnId(0)).unwrap().updated_at, SimTime::from_secs(7));
    }

    #[test]
    fn len_counts_distinct_rows_not_column_capacity() {
        let mut m = Mnld::new();
        // A high id grows the column but only one node is tracked.
        m.update(MnId(1000), DomainId(2), addr("20.2.0.1"), SimTime::ZERO);
        m.update(MnId(1000), DomainId(3), addr("20.3.0.1"), SimTime::ZERO);
        assert_eq!(m.len(), 1);
    }
}
