//! Multi-tier control messages and the unified packet payload.

use mtnet_mobileip::MipMessage;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a mobile node in a scenario (dense index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MnId(pub u32);

impl fmt::Display for MnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mn{}", self.0)
    }
}

/// Cellular IP control carried inside simulation packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CipControl {
    /// Route-update packet climbing from the attach BS to the gateway,
    /// refreshing each routing cache it passes (paper §2.2.2).
    RouteUpdate {
        /// The mobile node's (home) address being refreshed.
        mn: Addr,
        /// The node the packet came from (downlink direction to install).
        came_from_bs: bool,
    },
    /// Paging-update packet from an idle node (coarse location).
    PagingUpdate {
        /// The mobile node's (home) address.
        mn: Addr,
    },
    /// Semisoft notification: open a bicast window at the crossover before
    /// the node retunes (paper §2.2.2 semisoft handoff).
    Semisoft {
        /// The mobile node about to hand off.
        mn: Addr,
    },
}

/// Multi-tier mobility-management messages (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MtMessage {
    /// Periodic "Location Message" from the MN up the hierarchy, keeping
    /// micro_table/macro_table records alive (§3.1).
    LocationMessage {
        /// The reporting node.
        mn: Addr,
        /// The cell currently serving it.
        serving: CellId,
    },
    /// "Update Location Message" after a successful handoff (§3.2).
    UpdateLocation {
        /// The node that moved.
        mn: Addr,
        /// Its new serving cell.
        new_cell: CellId,
    },
    /// "Delete Location Message" to the old BS (macro→micro case, §3.2a).
    DeleteLocation {
        /// The node that moved away.
        mn: Addr,
        /// The cell it left.
        old_cell: CellId,
    },
    /// Handoff request from the MN to a candidate BS.
    HandoffRequest {
        /// The requesting node.
        mn: Addr,
        /// The requested target cell.
        target: CellId,
    },
    /// BS grants the handoff (a channel was reserved).
    HandoffAccept {
        /// The requesting node.
        mn: Addr,
        /// The granted cell.
        target: CellId,
    },
    /// BS rejects the handoff (no resources) — the MN falls back to the
    /// other tier (§3.2).
    HandoffReject {
        /// The requesting node.
        mn: Addr,
        /// The cell that refused.
        target: CellId,
    },
    /// RSMC → HA/CN movement notification (§4): lets correspondents send
    /// straight to the new RSMC without waiting for a full Mobile IP
    /// registration.
    RsmcNotify {
        /// The node that moved.
        mn: Addr,
        /// The RSMC (gateway/care-of) address now serving it.
        rsmc: Addr,
    },
}

impl MtMessage {
    /// Wire size of the control payload in bytes. Small fixed sizes in the
    /// range of the Mobile IP registration messages they complement.
    pub fn size_bytes(&self) -> u32 {
        match self {
            MtMessage::LocationMessage { .. } => 32,
            MtMessage::UpdateLocation { .. } => 32,
            MtMessage::DeleteLocation { .. } => 32,
            MtMessage::HandoffRequest { .. } => 24,
            MtMessage::HandoffAccept { .. } => 24,
            MtMessage::HandoffReject { .. } => 24,
            MtMessage::RsmcNotify { .. } => 40,
        }
    }
}

/// Everything a simulation packet can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Application (multimedia flow) data.
    Data,
    /// Mobile IP control.
    Mip(MipMessage),
    /// Cellular IP control.
    Cip(CipControl),
    /// Multi-tier mobility control.
    Mt(MtMessage),
}

impl Payload {
    /// True for application data.
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data)
    }

    /// Control payload size; data payload size lives on the packet.
    pub fn control_size_bytes(&self) -> u32 {
        match self {
            Payload::Data => 0,
            Payload::Mip(m) => m.size_bytes(),
            Payload::Cip(_) => 28,
            Payload::Mt(m) => m.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn sizes_positive_for_control() {
        let msgs = [
            MtMessage::LocationMessage {
                mn: addr("1.1.1.1"),
                serving: CellId(0),
            },
            MtMessage::UpdateLocation {
                mn: addr("1.1.1.1"),
                new_cell: CellId(1),
            },
            MtMessage::DeleteLocation {
                mn: addr("1.1.1.1"),
                old_cell: CellId(0),
            },
            MtMessage::HandoffRequest {
                mn: addr("1.1.1.1"),
                target: CellId(1),
            },
            MtMessage::HandoffAccept {
                mn: addr("1.1.1.1"),
                target: CellId(1),
            },
            MtMessage::HandoffReject {
                mn: addr("1.1.1.1"),
                target: CellId(1),
            },
            MtMessage::RsmcNotify {
                mn: addr("1.1.1.1"),
                rsmc: addr("2.2.2.2"),
            },
        ];
        for m in msgs {
            assert!(m.size_bytes() > 0);
            assert!(Payload::Mt(m).control_size_bytes() > 0);
        }
    }

    #[test]
    fn data_payload_classification() {
        assert!(Payload::Data.is_data());
        assert_eq!(Payload::Data.control_size_bytes(), 0);
        let cip = Payload::Cip(CipControl::RouteUpdate {
            mn: addr("1.1.1.1"),
            came_from_bs: true,
        });
        assert!(!cip.is_data());
        assert!(cip.control_size_bytes() > 0);
    }

    #[test]
    fn mn_id_display() {
        assert_eq!(MnId(4).to_string(), "mn4");
    }
}
