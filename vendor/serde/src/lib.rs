//! Offline API-subset stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the derive
//! macros the workspace imports. The derives expand to nothing, so these
//! act as marker traits only — enough to compile `use serde::{Serialize,
//! Deserialize}` + `#[derive(...)]` without a crates registry. See
//! `vendor/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for the `serde::ser` module namespace.
pub mod ser {
    pub use crate::Serialize;
}

/// Stand-in for the `serde::de` module namespace.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
