//! Offline API-subset stand-in for `rand` 0.8.
//!
//! The workspace implements its own generator (`mtnet_sim::RngStream`) and
//! only needs the `RngCore` trait so that generator can advertise the
//! standard interface. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type matching `rand::Error`'s role in `try_fill_bytes`.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Stand-in for the `rand::rngs` module namespace (empty subset).
pub mod rngs {}
