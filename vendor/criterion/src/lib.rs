//! Offline API-subset stand-in for `criterion` 0.5.
//!
//! Implements the slice of the Criterion API the workspace's bench targets
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! timing harness. No warm-up modelling, outlier rejection, or HTML
//! reports; it times `sample_size` batches and prints min/mean/max per
//! iteration. See `vendor/README.md` for the restoration path.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing harness handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch of iterations this sample requested.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark manager mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes harness = false binaries with `--bench`
        // (plus any user filter strings); accept and record non-flag args
        // as substring filters, ignore the flags themselves.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, f: R) -> &mut Self {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("bench", f);
        group.finish();
        self
    }

    /// End-of-run hook used by [`criterion_main!`] (no-op in this subset).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect (Criterion default: 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line min/mean/max summary.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: R) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed);
        }
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let max = per_iter.iter().max().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len().max(1) as u32;
        println!(
            "{full:<40} [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            per_iter.len()
        );
        self
    }

    /// Ends the group (reporting already happened per bench function).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("f", |b| b.iter(|| ran = black_box(ran + 1)));
        group.finish();
        assert!(ran >= 3, "routine ran once per sample");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }
}
