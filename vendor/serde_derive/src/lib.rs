//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! `#[derive(Serialize, Deserialize)]` must resolve to *something* for the
//! workspace to compile without registry access; these derives accept the
//! same attribute namespace as the real ones and expand to nothing, so the
//! annotated types simply don't get serialization impls. See
//! `vendor/README.md` for the restoration path.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
