//! String generation from character-class patterns.
//!
//! The real proptest compiles full regexes; this subset supports the shape
//! the workspace's tests use — a concatenation of units, each a literal
//! character or a character class `[a-z0-9_]`, optionally followed by a
//! `{min,max}` repetition — e.g. `"[a-z]{1,12}"`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Unit {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Unit> {
    let mut units = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = if c == '[' {
            let mut class = Vec::new();
            loop {
                let c = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                if c == ']' {
                    break;
                }
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling '-' in pattern {pattern:?}"));
                    assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                    class.extend(c..=hi);
                } else {
                    class.push(c);
                }
            }
            assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
            class
        } else {
            assert!(
                !"(){}|*+?.^$\\".contains(c),
                "unsupported regex feature {c:?} in pattern {pattern:?} \
                 (vendored proptest supports only char classes and {{m,n}})"
            );
            vec![c]
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let rep: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let (lo, hi) = rep
                .split_once(',')
                .unwrap_or_else(|| panic!("bad repetition {{{rep}}} in pattern {pattern:?}"));
            let lo: usize = lo.trim().parse().expect("bad repetition min");
            let hi: usize = hi.trim().parse().expect("bad repetition max");
            assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
            (lo, hi)
        } else {
            (1, 1)
        };
        units.push(Unit { choices, min, max });
    }
    units
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        let n = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(unit.choices[rng.below(unit.choices.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::for_case(1, "s", 0);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_multi_ranges() {
        let mut rng = TestRng::for_case(1, "s2", 0);
        let s = generate_from_pattern("x[0-9a-f]{4,4}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x'));
        assert!(s[1..].bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn rejects_unsupported_syntax() {
        let mut rng = TestRng::for_case(1, "s3", 0);
        let _ = generate_from_pattern("a+", &mut rng);
    }
}
