//! Offline API-subset stand-in for `proptest`.
//!
//! A real — but deliberately small — property-testing harness covering the
//! API surface `tests/properties.rs` uses: the [`proptest!`] and
//! `prop_assert*` macros, range strategies, [`arbitrary::any`], string
//! character-class patterns, [`collection`] strategies, and
//! [`sample::Index`]. Unlike the real crate there is **no shrinking** and
//! no persisted failure regressions: a failing case reports its seed and
//! case number so it can be replayed with `PROPTEST_SEED`. See
//! `vendor/README.md` for the restoration path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `#[test] fn name(arg in strategy, …) { body }` as a
/// property: the body is executed for `PROPTEST_CASES` (default 64)
/// generated inputs.
///
/// Mirrors `proptest::proptest!` for the subset of syntax this workspace
/// uses. There is no shrinking; failures report the master seed and case
/// index for replay.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases_from_env();
                let seed = $crate::test_runner::seed_from_env();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        seed,
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {}): {}",
                            stringify!($name), case, cases, seed, err,
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "{l:?} != {r:?}");
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, ::std::format!($($fmt)+));
            }
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "{l:?} == {r:?}");
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "{:?} == {:?}: {}", l, r, ::std::format!($($fmt)+));
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2.5f64..2.5, z in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..5),
            s in prop::collection::btree_set(0u8..=200, 1..6),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 6);
        }

        #[test]
        fn string_patterns_match_class(label in "[a-z]{1,12}") {
            prop_assert!((1..=12).contains(&label.len()));
            prop_assert!(label.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn sample_index_in_range(pick in any::<(prop::sample::Index, prop::sample::Index)>()) {
            prop_assert!(pick.0.index(7) < 7);
            prop_assert!(pick.1.index(1) == 0);
        }
    }

    #[test]
    fn failing_property_reports_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("x was"), "got: {msg}");
    }
}
