//! Sampling helpers (`Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A position that can index any non-empty slice, mirroring
/// `proptest::sample::Index`: the concrete index is resolved against a
/// length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Resolves this sample against a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_always_in_range() {
        let mut rng = TestRng::for_case(9, "idx", 0);
        for len in 1..50 {
            let i = Index::arbitrary(&mut rng);
            assert!(i.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_empty_panics() {
        Index(3).index(0);
    }
}
