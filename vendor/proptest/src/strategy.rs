//! The [`Strategy`] trait and the built-in range strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// The real crate's `Strategy` produces shrinkable value *trees*; this
/// subset generates plain values (no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    // u64::MIN..=u64::MAX overflows a u64 span; draw raw bits.
                    if span > u128::from(u64::MAX) {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Map the unit draw over [0, 1] inclusively so `hi` is reachable.
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        lo + (hi - lo) * u
    }
}

/// Character-class string patterns: `&str` literals like `"[a-z]{1,12}"`
/// act as strategies producing matching `String`s (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// Tuples of strategies are strategies over tuples of their values
// (mirrors the real crate), so `(0u32..4, -1.0f64..1.0)` composes without
// `prop_compose!`. Components generate left to right.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(42, "strategy", 0)
    }

    #[test]
    fn int_ranges_hit_extremes_and_stay_bounded() {
        let mut r = rng();
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = (3u8..=5).generate(&mut r);
            assert!((3..=5).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn negative_ranges_work() {
        let mut r = rng();
        for _ in 0..1_000 {
            let x = (-10i32..-2).generate(&mut r);
            assert!((-10..-2).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_bounded() {
        let mut r = rng();
        for _ in 0..1_000 {
            let x = (-1e6f64..1e6).generate(&mut r);
            assert!((-1e6..1e6).contains(&x));
            let y = (0.0f64..=1.0).generate(&mut r);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut r = rng();
        let _ = (u64::MIN..=u64::MAX).generate(&mut r);
    }
}
