//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size bound for generated collections, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest allowed length (inclusive).
    pub min: usize,
    /// Largest allowed length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` holding between `size.min` and
/// `size.max` *distinct* elements (when the element domain allows it).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so a tiny
        // element domain (e.g. 1u8..=3 with target 6) still terminates.
        let mut attempts = 0;
        while set.len() < target && attempts < 100 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_within_bounds() {
        let mut rng = TestRng::for_case(3, "vec", 0);
        for _ in 0..200 {
            let v = vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let mut rng = TestRng::for_case(3, "set", 0);
        for _ in 0..200 {
            let s = btree_set(1u8..=32, 1..6).generate(&mut rng);
            assert!((1..6).contains(&s.len()));
        }
    }

    #[test]
    fn btree_set_terminates_on_tiny_domain() {
        let mut rng = TestRng::for_case(3, "tiny", 0);
        let s = btree_set(0u8..=1, 5..6).generate(&mut rng);
        assert!(s.len() <= 2, "domain only has two values");
    }
}
