//! Case counting, seeding, and the per-case RNG behind [`crate::proptest!`].

use std::fmt;

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of generated cases per property: `PROPTEST_CASES` or 64.
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Master seed for the whole run: `PROPTEST_SEED` or a fixed default, so
/// runs are reproducible by default and replayable after a failure.
pub fn seed_from_env() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-case generator (SplitMix64-seeded xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derives the generator for one (property, case) pair: the property
    /// name is hashed so distinct properties see independent streams.
    pub fn for_case(master_seed: u64, property: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in property.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = master_seed ^ h ^ (u64::from(case) << 32 | u64::from(case));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`, unbiased (Lemire rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case(1, "p", 0);
        let mut b = TestRng::for_case(1, "p", 0);
        let mut c = TestRng::for_case(1, "p", 1);
        let mut d = TestRng::for_case(1, "q", 0);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::for_case(2, "b", 0);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn env_defaults() {
        assert!(cases_from_env() > 0);
        let _ = seed_from_env();
    }
}
