//! `any::<T>()` — the type-driven default strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Returns the default strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; full bit-pattern floats (NaN,
        // infinities) are more surprise than the callers want.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A);
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_case(7, "any", 0);
        let a: u32 = any().generate(&mut rng);
        let b: u32 = any().generate(&mut rng);
        assert_ne!(a, b, "consecutive draws almost surely differ");
        let (x, y): (bool, bool) = any().generate(&mut rng);
        let _ = (x, y);
        let f: f64 = any().generate(&mut rng);
        assert!(f.is_finite());
    }
}
