//! Integration: a Cellular IP access network maintained through moves,
//! idle periods and handoffs — the paper's §2.2.2 mechanisms end to end.

use mtnet_cellularip::{
    CipConfig, CipNetwork, CipTimers, HandoffKind, MnCipState, MnMode, PageOutcome,
    SemisoftController,
};
use mtnet_net::{Addr, NodeId};
use mtnet_sim::{SimDuration, SimTime};

fn addr(s: &str) -> Addr {
    s.parse().unwrap()
}

/// gateway(0) with two branches: 1→{3,4}, 2→{5,6}.
fn network() -> CipNetwork {
    let mut n = CipNetwork::new(NodeId(0), CipConfig::default());
    n.add_bs(NodeId(1), NodeId(0));
    n.add_bs(NodeId(2), NodeId(0));
    n.add_bs(NodeId(3), NodeId(1));
    n.add_bs(NodeId(4), NodeId(1));
    n.add_bs(NodeId(5), NodeId(2));
    n.add_bs(NodeId(6), NodeId(2));
    n
}

#[test]
fn active_node_lifecycle_with_state_machine() {
    let mut net = network();
    let timers = CipTimers::default();
    let mn = addr("10.0.2.1");
    let mut state = MnCipState::new(timers, SimTime::ZERO);

    // Active: periodic route updates keep the path alive.
    let mut t = SimTime::ZERO;
    for _ in 0..10 {
        assert_eq!(state.mode(t), MnMode::Active);
        net.route_update(mn, NodeId(3), t);
        state.touch(t); // data flows
        t = t + state.update_period(t);
    }
    assert!(net.downlink_path(mn, t).is_some());

    // Silence: the node idles; routing state decays, paging remains after
    // a paging update.
    net.paging_update(mn, NodeId(3), t);
    let idle_t = t + timers.active_timeout + SimDuration::from_secs(1);
    assert_eq!(state.mode(idle_t), MnMode::Idle);
    let late = t + timers.route_cache_lifetime() + SimDuration::from_secs(1);
    assert!(
        net.downlink_path(mn, late).is_none(),
        "routing state decayed"
    );
    assert!(
        matches!(net.page(mn, late), PageOutcome::Directed { bs, .. } if bs == NodeId(3)),
        "paging still knows the node"
    );
}

#[test]
fn hard_handoff_stale_branch_until_crossover_update() {
    let mut net = network();
    let mn = addr("10.0.2.1");
    let t0 = SimTime::ZERO;
    net.route_update(mn, NodeId(3), t0);

    // Hard handoff 3 → 4: the crossover is node 1. Before the new route
    // update arrives, the gateway still routes down the old branch.
    let before = net.downlink_path(mn, SimTime::from_millis(100)).unwrap();
    assert_eq!(*before.last().unwrap(), NodeId(3));

    // New update refreshes hop-by-hop with real propagation: BS 4 first…
    net.refresh_route_at(NodeId(4), mn, NodeId(4), SimTime::from_millis(110));
    // …the crossover learns 5 ms later…
    let path_mid = net.downlink_path(mn, SimTime::from_millis(112)).unwrap();
    assert_eq!(
        *path_mid.last().unwrap(),
        NodeId(3),
        "crossover not updated yet: packets still die on the old branch"
    );
    net.refresh_route_at(NodeId(1), mn, NodeId(4), SimTime::from_millis(115));
    net.refresh_route_at(NodeId(0), mn, NodeId(1), SimTime::from_millis(120));
    let after = net.downlink_path(mn, SimTime::from_millis(121)).unwrap();
    assert_eq!(*after.last().unwrap(), NodeId(4), "path repaired");
}

#[test]
fn semisoft_window_bounded_by_kind_loss_window() {
    let net = network();
    let hop = SimDuration::from_millis(5);
    for (old, new) in [
        (NodeId(3), NodeId(4)),
        (NodeId(3), NodeId(5)),
        (NodeId(4), NodeId(6)),
    ] {
        let hard = HandoffKind::Hard.loss_window(net.tree(), old, new, hop);
        let semi = HandoffKind::default_semisoft().loss_window(net.tree(), old, new, hop);
        assert!(semi <= hard);
        assert!(!hard.is_zero(), "{old}->{new} hard window must be positive");
    }
}

#[test]
fn semisoft_bicast_bridges_the_handoff() {
    let net = network();
    let mut ss = SemisoftController::new();
    let mn = addr("10.0.2.1");
    let delay = SimDuration::from_millis(100);

    // Node 3 → 4, crossover at 1: the semisoft packet opens the window.
    ss.begin(mn, NodeId(3), NodeId(4), SimTime::ZERO, delay);
    // During the window the crossover duplicates to both branches.
    let (old_bs, new_bs) = ss.bicast_targets(mn, SimTime::from_millis(50)).unwrap();
    assert_eq!(net.tree().crossover(old_bs, new_bs), NodeId(1));
    // After the window the controller stops duplicating.
    assert!(ss.bicast_targets(mn, SimTime::from_millis(150)).is_none());
    assert_eq!(ss.bicast_count(), 1);
}

#[test]
fn paging_cost_ordering() {
    let mut net = network();
    let mn = addr("10.0.2.1");
    net.paging_update(mn, NodeId(6), SimTime::ZERO);
    // Directed page: messages = hops on one path.
    let directed = net.page(mn, SimTime::from_secs(10));
    // Unknown node: flood to all 6 base stations.
    let flooded = net.page(addr("10.0.9.9"), SimTime::from_secs(10));
    assert!(
        directed.messages() < flooded.messages(),
        "directed ({}) must beat flooding ({})",
        directed.messages(),
        flooded.messages()
    );
}

#[test]
fn route_updates_also_serve_as_paging_refresh() {
    // The protocol lets data packets refresh route caches; our network
    // keeps paging separate, so verify both coexist for one node moving
    // between branches.
    let mut net = network();
    let mn = addr("10.0.2.1");
    let mut t = SimTime::ZERO;
    for bs in [NodeId(3), NodeId(4), NodeId(5), NodeId(6)] {
        net.route_update(mn, bs, t);
        net.paging_update(mn, bs, t);
        assert_eq!(net.locate(mn, t + SimDuration::from_millis(1)), Some(bs));
        t += SimDuration::from_secs(1);
    }
    let (ru, pu) = net.counters();
    assert_eq!((ru, pu), (4, 4));
}

#[test]
fn many_nodes_share_the_tree() {
    let mut net = network();
    let t = SimTime::ZERO;
    let bss = [NodeId(3), NodeId(4), NodeId(5), NodeId(6)];
    for i in 0..100u8 {
        let mn = Addr::from_octets(10, 0, 3, i);
        net.route_update(mn, bss[i as usize % 4], t);
    }
    let q = t + SimDuration::from_millis(1);
    for i in 0..100u8 {
        let mn = Addr::from_octets(10, 0, 3, i);
        assert_eq!(net.locate(mn, q), Some(bss[i as usize % 4]));
    }
    // Each node's path is 3 mappings (BS, branch, gateway).
    assert_eq!(net.total_route_entries(q), 300);
    // One sweep after expiry clears everything.
    net.sweep(t + SimDuration::from_secs(60));
    assert_eq!(net.total_route_entries(t + SimDuration::from_secs(60)), 0);
}
