//! Property-based tests on core data structures and invariants
//! (proptest). Each property encodes something the reproduction's
//! correctness rests on.

use mtnet_cellularip::{CipTree, HandoffKind, SoftStateCache};
use mtnet_core::handoff::{
    Candidate, CurrentAttachment, DecisionConfig, HandoffDecision, HandoffEngine, HandoffFactors,
};
use mtnet_core::tier::Tier;
use mtnet_metrics::{Histogram, Summary};
use mtnet_mobility::Point;
use mtnet_net::{Addr, LinkConfig, NodeId, Prefix, RouteCache, RoutingTable, Topology};
use mtnet_radio::{CallKind, Cell, CellId, CellKind, CellMap, ChannelPool, LaneSelect};
use mtnet_sim::{RngStream, Scheduler, SimDuration, SimTime};
use proptest::prelude::*;

/// Two-variant event for the batched-dispatch property: runs must split
/// at variant boundaries, so the payload needs more than one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchEv {
    A(usize),
    B(usize),
}

proptest! {
    // ---------------------------------------------------------------
    // Radio grid index: bucketed measurement is observationally
    // identical to the full scan it replaced — same cells, same RSSIs,
    // same order — on arbitrary layouts and probe points.
    // ---------------------------------------------------------------
    #[test]
    fn grid_measure_equals_full_scan(
        cells in prop::collection::vec(
            (-20_000.0f64..20_000.0, -20_000.0f64..20_000.0, 0usize..4),
            0..40,
        ),
        probes in prop::collection::vec(
            (-25_000.0f64..25_000.0, -25_000.0f64..25_000.0),
            1..20,
        ),
        tier_filter in 0usize..5,
    ) {
        let kinds = [CellKind::Pico, CellKind::Micro, CellKind::Macro, CellKind::Satellite];
        let mut map = CellMap::new(7);
        for (i, &(x, y, k)) in cells.iter().enumerate() {
            map.add(Cell::new(
                CellId(i as u32),
                kinds[k],
                Point::new(x, y),
                NodeId(i as u32),
            ));
        }
        let tier = kinds.get(tier_filter).copied(); // index 4 → None (all tiers)
        for &(px, py) in &probes {
            let at = Point::new(px, py);
            let grid = map.measure(at, tier);
            let scan = map.measure_full_scan(at, tier);
            prop_assert_eq!(&grid, &scan, "grid and scan disagree at {:?}", at);
            // Single-pass best-cell variants agree with the sorted list.
            prop_assert_eq!(map.best_cell(at, tier), scan.first().map(|m| m.cell));
            if let Some(first) = scan.first() {
                // Zero hysteresis from a non-covering current cell must
                // pick the strongest candidate, like the list head.
                let ghost = CellId(u32::MAX);
                prop_assert_eq!(
                    map.best_cell_hysteresis(at, ghost, 0.0, tier),
                    Some(first.cell)
                );
            }
        }
    }

    // ---------------------------------------------------------------
    // RouteCache: cached next hops, hop counts and delays are identical
    // to the per-call Dijkstra on arbitrary topologies — including after
    // mutations that must invalidate the cache.
    // ---------------------------------------------------------------
    #[test]
    fn route_cache_equals_naive_dijkstra(
        edges in prop::collection::vec((0u32..12, 0u32..12, 1u64..50), 0..40),
        extra_edges in prop::collection::vec((0u32..14, 0u32..14, 1u64..50), 1..10),
    ) {
        let n = 12u32;
        let mut topo = Topology::new();
        for i in 0..n {
            topo.add_node(Addr(0x0a00_0000 | i));
        }
        let add = |topo: &mut Topology, a: u32, b: u32, ms: u64| {
            if a != b {
                topo.add_link(NodeId(a), NodeId(b), LinkConfig {
                    propagation: SimDuration::from_millis(ms),
                    ..LinkConfig::backbone()
                });
            }
        };
        for &(a, b, ms) in &edges {
            add(&mut topo, a, b, ms);
        }
        let mut cache = RouteCache::new();
        let check = |topo: &Topology, cache: &mut RouteCache| {
            let n = topo.node_count() as u32;
            for s in 0..n {
                for d in 0..n {
                    let (s, d) = (NodeId(s), NodeId(d));
                    prop_assert_eq!(cache.next_hop(topo, s, d), topo.next_hop_on_path(s, d));
                    prop_assert_eq!(cache.hop_count(topo, s, d), topo.hop_count(s, d));
                }
            }
            Ok(())
        };
        check(&topo, &mut cache)?;
        // Mutate: add two nodes and more links; the same cache object must
        // lazily invalidate and agree again.
        topo.add_node(Addr(0x0a00_0000 | 12));
        topo.add_node(Addr(0x0a00_0000 | 13));
        for &(a, b, ms) in &extra_edges {
            add(&mut topo, a, b, ms);
        }
        check(&topo, &mut cache)?;
    }

    // ---------------------------------------------------------------
    // Scheduler: events fire in (time, insertion) order, never lost.
    // ---------------------------------------------------------------
    #[test]
    fn scheduler_total_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0usize);
        while let Some(e) = q.pop() {
            let t = e.time();
            let i = e.into_event();
            // Non-decreasing time; FIFO among equal times.
            prop_assert!(t > last.0 || (t == last.0 && (i > last.1 || popped.is_empty())));
            last = (t, i);
            popped.push(i);
        }
        prop_assert_eq!(popped.len(), times.len(), "no event lost");
    }

    // ---------------------------------------------------------------
    // Addressing: prefixes contain exactly their subnet.
    // ---------------------------------------------------------------
    #[test]
    fn prefix_membership(addr_bits in any::<u32>(), len in 0u8..=32) {
        let a = Addr(addr_bits);
        let p = Prefix::new(a, len);
        prop_assert!(p.contains(a), "an address is inside its own prefix");
        // Flipping any bit inside the mask leaves membership intact;
        // flipping a masked bit breaks it.
        if len > 0 {
            let flipped = Addr(addr_bits ^ (1 << (32 - len)));
            prop_assert!(!p.contains(flipped), "network-bit flip escapes /{}", len);
        }
        if len < 32 {
            let flipped = Addr(addr_bits ^ 1u32.checked_shl(31 - u32::from(len)).unwrap_or(1) >> (31 - u32::from(len)));
            let host_flipped = Addr(addr_bits ^ 1);
            prop_assert!(p.contains(host_flipped) || len == 32);
            let _ = flipped;
        }
    }

    // ---------------------------------------------------------------
    // Routing: LPM always returns the most specific matching prefix.
    // ---------------------------------------------------------------
    #[test]
    fn lpm_most_specific_wins(
        base in any::<u32>(),
        lens in prop::collection::btree_set(1u8..=32, 1..6),
    ) {
        let mut table = RoutingTable::new();
        let addr = Addr(base);
        for (i, &len) in lens.iter().enumerate() {
            table.insert(Prefix::new(addr, len), NodeId(i as u32));
        }
        let expect = lens.len() as u32 - 1; // longest inserted is last index
        prop_assert_eq!(table.lookup(addr), Some(NodeId(expect)));
    }

    // ---------------------------------------------------------------
    // Soft state: entries live exactly `lifetime` past the last refresh.
    // ---------------------------------------------------------------
    #[test]
    fn soft_state_expiry(
        lifetime_ms in 1u64..10_000,
        probe_ms in 0u64..20_000,
    ) {
        let mut c: SoftStateCache<u8, u8> =
            SoftStateCache::new(SimDuration::from_millis(lifetime_ms));
        c.refresh(1, 7, SimTime::ZERO);
        let alive = c.get(&1, SimTime::from_millis(probe_ms)).is_some();
        prop_assert_eq!(alive, probe_ms < lifetime_ms);
    }

    // ---------------------------------------------------------------
    // CIP tree: the crossover is a common ancestor of both nodes and the
    // deepest such node.
    // ---------------------------------------------------------------
    #[test]
    fn crossover_is_deepest_common_ancestor(
        shape in prop::collection::vec(0usize..6, 1..24),
        pick in any::<(prop::sample::Index, prop::sample::Index)>(),
    ) {
        // Build a random tree: node i+1 attaches under a previous node.
        let mut tree = CipTree::new(NodeId(0));
        let mut nodes = vec![NodeId(0)];
        for (i, &p) in shape.iter().enumerate() {
            let parent = nodes[p % nodes.len()];
            let id = NodeId(i as u32 + 1);
            tree.add_bs(id, parent);
            nodes.push(id);
        }
        let a = nodes[pick.0.index(nodes.len())];
        let b = nodes[pick.1.index(nodes.len())];
        let x = tree.crossover(a, b);
        let path_a = tree.uplink_path(a);
        let path_b = tree.uplink_path(b);
        prop_assert!(path_a.contains(&x) && path_b.contains(&x), "common ancestor");
        // No strictly deeper common node exists.
        for n in &path_a {
            if path_b.contains(n) {
                prop_assert!(tree.depth(*n) <= tree.depth(x));
            }
        }
    }

    // ---------------------------------------------------------------
    // Handoff loss windows: semisoft never exceeds hard.
    // ---------------------------------------------------------------
    #[test]
    fn semisoft_never_worse_than_hard(
        shape in prop::collection::vec(0usize..4, 2..16),
        pick in any::<(prop::sample::Index, prop::sample::Index)>(),
        per_hop_ms in 1u64..50,
        delay_ms in 0u64..500,
    ) {
        let mut tree = CipTree::new(NodeId(0));
        let mut nodes = vec![NodeId(0)];
        for (i, &p) in shape.iter().enumerate() {
            let parent = nodes[p % nodes.len()];
            let id = NodeId(i as u32 + 1);
            tree.add_bs(id, parent);
            nodes.push(id);
        }
        let a = nodes[pick.0.index(nodes.len())];
        let b = nodes[pick.1.index(nodes.len())];
        let hop = SimDuration::from_millis(per_hop_ms);
        let hard = HandoffKind::Hard.loss_window(&tree, a, b, hop);
        let semi = HandoffKind::Semisoft { delay: SimDuration::from_millis(delay_ms) }
            .loss_window(&tree, a, b, hop);
        prop_assert!(semi <= hard);
    }

    // ---------------------------------------------------------------
    // Channel pools: occupancy never exceeds capacity; guard channels
    // keep handoff admission at least as permissive as new-call admission.
    // ---------------------------------------------------------------
    #[test]
    fn channel_pool_invariants(ops in prop::collection::vec(any::<(bool, bool)>(), 1..200)) {
        let mut pool = ChannelPool::new(10, 3);
        for (is_admit, is_handoff) in ops {
            if is_admit {
                let kind = if is_handoff { CallKind::Handoff } else { CallKind::New };
                // Admission permissiveness: if a new call would be
                // admitted, a handoff must be too.
                if pool.can_admit(CallKind::New) {
                    prop_assert!(pool.can_admit(CallKind::Handoff));
                }
                let _ = pool.admit(kind);
            } else if pool.in_use() > 0 {
                pool.release();
            }
            prop_assert!(pool.in_use() <= pool.total());
            let ratio = pool.free_ratio();
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
    }

    // ---------------------------------------------------------------
    // Metrics: Summary merge is observation-order independent.
    // ---------------------------------------------------------------
    #[test]
    fn summary_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..50),
        ys in prop::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut ab = Summary::from_iter(xs.iter().copied());
        ab.merge(&Summary::from_iter(ys.iter().copied()));
        let all = Summary::from_iter(xs.iter().chain(ys.iter()).copied());
        prop_assert_eq!(ab.count(), all.count());
        if ab.count() > 0 {
            prop_assert!((ab.mean() - all.mean()).abs() < 1e-6);
            prop_assert!((ab.sample_variance() - all.sample_variance()).abs() < 1e-3);
        }
    }

    // ---------------------------------------------------------------
    // Histogram: percentile is monotone and bounded by extrema.
    // ---------------------------------------------------------------
    #[test]
    fn histogram_percentile_monotone(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for pct in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let p = h.percentile(pct).unwrap();
            prop_assert!(p >= last, "p{} = {} < previous {}", pct, p, last);
            prop_assert!(p >= h.min().unwrap());
            prop_assert!(p <= h.max().unwrap());
            last = p;
        }
    }

    // ---------------------------------------------------------------
    // RNG streams: derivation is deterministic and label-sensitive.
    // ---------------------------------------------------------------
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::RngCore;
        let mut a = RngStream::derive(seed, &label);
        let mut b = RngStream::derive(seed, &label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---------------------------------------------------------------
    // Handoff decision: never proposes a cell below the sensitivity
    // floor, and `Stay` only when currently attached.
    // ---------------------------------------------------------------
    #[test]
    fn decision_sanity(
        speed in 0.0f64..40.0,
        rssis in prop::collection::vec(-120.0f64..-40.0, 0..8),
        free in prop::collection::vec(0.0f64..=1.0, 0..8),
    ) {
        let n = rssis.len().min(free.len());
        let candidates: Vec<Candidate> = (0..n)
            .map(|i| Candidate {
                cell: CellId(i as u32),
                tier: if i % 2 == 0 { Tier::Micro } else { Tier::Macro },
                rssi_dbm: rssis[i],
                free_ratio: free[i],
            })
            .collect();
        let engine = HandoffEngine::new(DecisionConfig::default(), HandoffFactors::all());
        match engine.decide(speed, None, &candidates) {
            HandoffDecision::Stay => prop_assert!(false, "cannot stay when unattached"),
            HandoffDecision::Outage => {
                prop_assert!(
                    candidates.iter().all(|c| c.rssi_dbm < DecisionConfig::default().min_rssi_dbm),
                    "outage only when nothing is audible"
                );
            }
            HandoffDecision::Handoff { target, .. } => {
                let cand = candidates.iter().find(|c| c.cell == target).unwrap();
                prop_assert!(cand.rssi_dbm >= DecisionConfig::default().min_rssi_dbm);
            }
        }
        // With a current attachment the engine never proposes the same cell.
        if !candidates.is_empty() {
            let cur = CurrentAttachment {
                cell: candidates[0].cell,
                tier: candidates[0].tier,
                rssi_dbm: Some(candidates[0].rssi_dbm),
            };
            if let HandoffDecision::Handoff { target, .. } =
                engine.decide(speed, Some(cur), &candidates)
            {
                prop_assert_ne!(target, cur.cell, "handoff to self is a Stay");
            }
        }
    }

    // ---------------------------------------------------------------
    // Seed splitting: distinct (experiment, architecture, replication)
    // tuples never share a stream, and derivation is order-independent.
    // ---------------------------------------------------------------
    #[test]
    fn seed_tuples_never_collide(
        master in any::<u64>(),
        exp in "[a-z0-9_]{1,10}",
        arch in "[a-z0-9_]{1,10}",
        rep in 0u64..10_000,
        other_rep in 0u64..10_000,
    ) {
        use mtnet_sim::rng::replication_seed;
        let base = replication_seed(master, &exp, &arch, rep);
        if rep != other_rep {
            prop_assert_ne!(base, replication_seed(master, &exp, &arch, other_rep),
                "replication index must move the seed");
        }
        // Any label perturbation moves the seed.
        prop_assert_ne!(base, replication_seed(master, &format!("{exp}x"), &arch, rep));
        prop_assert_ne!(base, replication_seed(master, &exp, &format!("{arch}x"), rep));
        prop_assert_ne!(base, replication_seed(master.wrapping_add(1), &exp, &arch, rep));
        if exp != arch {
            prop_assert_ne!(base, replication_seed(master, &arch, &exp, rep),
                "experiment and architecture positions are not interchangeable");
        }
        // Streams from distinct tuples decorrelate (not just the seeds).
        use rand::RngCore;
        let mut a = mtnet_sim::SeedTree::new(master).label(&exp).label(&arch).index(rep).stream();
        let mut b = mtnet_sim::SeedTree::new(master).label(&exp).label(&format!("{arch}x")).index(rep).stream();
        let equal_draws = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert_eq!(equal_draws, 0, "sibling streams must not track each other");
    }

    #[test]
    fn seed_derivation_is_order_independent(
        master in any::<u64>(),
        exp in "[a-z]{1,8}",
        arch_a in "[a-z]{1,8}",
        arch_b in "[a-z]{1,8}",
        reps in 1u64..32,
    ) {
        use mtnet_sim::SeedTree;
        // The seed of (exp, arch_a, reps) is the same whether it is
        // derived first, last, or after materializing every sibling —
        // derivation never mutates shared state.
        let direct = SeedTree::new(master).label(&exp).label(&arch_a).index(reps).seed();
        let root = SeedTree::new(master).label(&exp);
        let mut sibling_seeds = Vec::new();
        for rep in 0..reps {
            sibling_seeds.push(root.label(&arch_b).index(rep).seed());
            sibling_seeds.push(root.label(&arch_a).index(rep).seed());
        }
        let after = root.label(&arch_a).index(reps).seed();
        prop_assert_eq!(direct, after, "sibling derivations perturbed a seed");
        let unique: std::collections::BTreeSet<u64> = sibling_seeds.iter().copied().collect();
        let expected = if arch_a == arch_b { reps } else { 2 * reps };
        prop_assert_eq!(unique.len() as u64, expected, "sibling seeds collided");
    }

    // ---------------------------------------------------------------
    // Batch runner: thread count never changes results or their order.
    // ---------------------------------------------------------------
    #[test]
    fn batch_runner_thread_invariant(
        jobs in prop::collection::vec(any::<u64>(), 0..48),
        threads in 2usize..8,
    ) {
        use mtnet_sim::BatchRunner;
        let work = |i: usize, j: u64| {
            j.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ (i as u64)
        };
        let seq = BatchRunner::new(1).run(jobs.clone(), work);
        let par = BatchRunner::new(threads).run(jobs, work);
        prop_assert_eq!(seq, par);
    }

    // ---------------------------------------------------------------
    // Scheduler backends: the calendar queue and the binary-heap
    // reference produce identical observable behavior on arbitrary
    // schedule / cancel / pop / pop-at-or-before interleavings — same
    // pop order (including `seq` FIFO ties), same cancel verdicts, same
    // lengths, same peeked times.
    // ---------------------------------------------------------------
    #[test]
    fn calendar_scheduler_equals_heap_reference(
        ops in prop::collection::vec((0u8..6, any::<u64>()), 1..400,)
    ) {
        use mtnet_sim::SchedulerKind;
        let mut cal = Scheduler::with_kind(SchedulerKind::Calendar);
        let mut heap = Scheduler::with_kind(SchedulerKind::Heap);
        let mut tokens = Vec::new();
        for (i, &(op, raw)) in ops.iter().enumerate() {
            match op {
                // Near-future schedule (µs..ms range, with same-time
                // collisions since the divisor quantizes heavily).
                0 | 1 => {
                    let d = SimDuration::from_nanos((raw % 1_000_000) / 64 * 64);
                    let (tc, th) = (cal.schedule_in(d, i), heap.schedule_in(d, i));
                    prop_assert_eq!(tc, th, "tokens diverged");
                    tokens.push((tc, th));
                }
                // Far-future schedule: exercises the overflow ladder and
                // its interplay with the wheel cursor.
                2 => {
                    let d = SimDuration::from_nanos(raw % 20_000_000_000);
                    let (tc, th) = (cal.schedule_in(d, i), heap.schedule_in(d, i));
                    prop_assert_eq!(tc, th, "tokens diverged");
                    tokens.push((tc, th));
                }
                // Pop and compare everything observable.
                3 => {
                    let (ec, eh) = (cal.pop(), heap.pop());
                    prop_assert_eq!(ec.is_some(), eh.is_some());
                    if let (Some(ec), Some(eh)) = (ec, eh) {
                        prop_assert_eq!(ec.time(), eh.time());
                        prop_assert_eq!(ec.into_event(), eh.into_event());
                    }
                }
                // Bounded pop at an arbitrary horizon past now.
                4 => {
                    let h = cal.now() + SimDuration::from_nanos(raw % 2_000_000);
                    let (ec, eh) = (cal.pop_at_or_before(h), heap.pop_at_or_before(h));
                    prop_assert_eq!(ec.is_some(), eh.is_some(), "horizon verdicts diverged");
                    if let (Some(ec), Some(eh)) = (ec, eh) {
                        prop_assert_eq!(ec.time(), eh.time());
                        prop_assert_eq!(ec.into_event(), eh.into_event());
                    }
                }
                // Cancel a remembered token (possibly already fired or
                // already cancelled — verdicts must agree). Each backend
                // gets the token *it* issued: tokens compare equal by
                // `(seq, time)` but also carry a backend-private
                // placement hint that makes heap cancellation one probe.
                _ => {
                    if !tokens.is_empty() {
                        let (tc, th) = tokens[(raw as usize) % tokens.len()];
                        prop_assert_eq!(cal.cancel(tc), heap.cancel(th));
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len(), "len diverged after op {}", i);
            prop_assert_eq!(cal.now(), heap.now(), "now diverged after op {}", i);
        }
        // Drain both: the tails must match event for event.
        prop_assert_eq!(cal.peek_time(), heap.peek_time());
        loop {
            let (ec, eh) = (cal.pop(), heap.pop());
            prop_assert_eq!(ec.is_some(), eh.is_some(), "tail lengths diverged");
            let (Some(ec), Some(eh)) = (ec, eh) else { break };
            prop_assert_eq!(ec.time(), eh.time());
            prop_assert_eq!(ec.into_event(), eh.into_event());
        }
    }

    // ---------------------------------------------------------------
    // Type-batched dispatch: consuming a scheduler through
    // `take_run_at_or_before` yields exactly the event sequence serial
    // pops yield, under arbitrary schedule/cancel/consume interleavings
    // and budget caps, on both backends. Runs never mix variants.
    // ---------------------------------------------------------------
    #[test]
    fn batched_runs_equal_serial_pops(
        ops in prop::collection::vec((0u8..8, any::<u64>()), 1..300),
        kind_pick in 0usize..2,
    ) {
        use mtnet_sim::SchedulerKind;
        let kind = [SchedulerKind::Calendar, SchedulerKind::Heap][kind_pick];
        let mut serial = Scheduler::with_kind(kind);
        let mut batched = Scheduler::with_kind(kind);
        let mut tokens = Vec::new();
        let mut run = Vec::new();
        for (i, &(op, raw)) in ops.iter().enumerate() {
            match op {
                // Schedule with heavy quantization → same-instant ties,
                // mixed variants.
                0..=3 => {
                    let d = SimDuration::from_nanos((raw % 500_000) / 1024 * 1024);
                    let ev = if raw % 2 == 0 { BatchEv::A(i) } else { BatchEv::B(i) };
                    let (ts, tb) = (serial.schedule_in(d, ev), batched.schedule_in(d, ev));
                    prop_assert_eq!(ts, tb, "tokens diverged");
                    tokens.push((ts, tb));
                }
                // Cancel a remembered token: drained-but-untaken batch
                // entries must stay cancellable, so verdicts agree even
                // when the cancel lands mid-tie-set.
                4 | 5 => {
                    if !tokens.is_empty() {
                        let (ts, tb) = tokens[(raw as usize) % tokens.len()];
                        prop_assert_eq!(
                            serial.cancel(ts), batched.cancel(tb),
                            "cancel verdicts diverged at op {}", i
                        );
                    }
                }
                // Take one run (budget-capped), then pop the same count
                // serially: same events, same order, same instant.
                _ => {
                    let horizon = batched.now() + SimDuration::from_nanos(raw % 1_000_000);
                    let max = raw % 5 + 1;
                    let n = batched.take_run_at_or_before(horizon, max, &mut run);
                    prop_assert!(n as u64 <= max, "run overran its budget");
                    if n == 0 {
                        prop_assert!(
                            serial.pop_at_or_before(horizon).is_none(),
                            "serial found an event the batch missed at op {}", i
                        );
                    } else {
                        prop_assert!(
                            run.iter().all(|e| {
                                std::mem::discriminant(e) == std::mem::discriminant(&run[0])
                            }),
                            "a run mixed variants"
                        );
                        for (j, ev) in run.iter().enumerate() {
                            let popped = serial.pop_at_or_before(horizon);
                            prop_assert!(popped.is_some(), "serial ran dry at {}/{}", j, n);
                            let popped = popped.unwrap();
                            prop_assert_eq!(popped.time(), batched.now(), "run instant diverged");
                            prop_assert_eq!(&popped.into_event(), ev);
                        }
                    }
                }
            }
            prop_assert_eq!(serial.len(), batched.len(), "len diverged after op {}", i);
        }
        // Drain both to the end through their own consumption paths.
        loop {
            let n = batched.take_run_at_or_before(SimTime::MAX, u64::MAX, &mut run);
            if n == 0 { break; }
            for ev in run.iter() {
                let popped = serial.pop();
                prop_assert!(popped.is_some(), "tail lengths diverged");
                prop_assert_eq!(&popped.unwrap().into_event(), ev);
            }
        }
        prop_assert!(serial.pop().is_none(), "serial tail outlived the batched one");
    }

    // ---------------------------------------------------------------
    // Batched RSSI: the structure-of-arrays sweep is bit-identical to
    // the full scan (and the grid) on arbitrary layouts, and the
    // hysteresis decision built from its output matches
    // `best_cell_hysteresis` across covered/uncovered currents and
    // margins.
    // ---------------------------------------------------------------
    #[test]
    fn measure_batch_equals_full_scan_incl_hysteresis(
        cells in prop::collection::vec(
            (-20_000.0f64..20_000.0, -20_000.0f64..20_000.0, 0usize..4),
            0..40,
        ),
        probes in prop::collection::vec(
            (-25_000.0f64..25_000.0, -25_000.0f64..25_000.0),
            1..16,
        ),
        tier_filter in 0usize..5,
        hysteresis_db in 0.0f64..30.0,
        current_pick in any::<usize>(),
    ) {
        let kinds = [CellKind::Pico, CellKind::Micro, CellKind::Macro, CellKind::Satellite];
        let mut map = CellMap::new(11);
        for (i, &(x, y, k)) in cells.iter().enumerate() {
            map.add(Cell::new(
                CellId(i as u32),
                kinds[k],
                Point::new(x, y),
                NodeId(i as u32),
            ));
        }
        let tier = kinds.get(tier_filter).copied(); // index 4 → None (all tiers)
        let mut batch = Vec::new();
        for &(px, py) in &probes {
            let at = Point::new(px, py);
            map.measure_batch(at, tier, &mut batch);
            let scan = map.measure_full_scan(at, tier);
            prop_assert_eq!(&batch, &scan, "batch and scan disagree at {:?}", at);
            // Every explicit lane width is bit-identical too — the SIMD
            // pre-filter may only discard cells the exact scalar tail
            // would also discard, at any vector width.
            let mut lane_out = Vec::new();
            for sel in [LaneSelect::Scalar, LaneSelect::W4, LaneSelect::W8] {
                map.measure_batch_lanes(at, tier, &mut lane_out, sel);
                prop_assert_eq!(
                    &lane_out, &scan,
                    "lane width {:?} diverged from the full scan at {:?}", sel, at
                );
            }
            // Hysteresis: rebuild the decision from the (batch) list and
            // hold it against the single-pass implementation, for both a
            // current cell drawn from the deployment and a ghost.
            let current = if cells.is_empty() {
                CellId(u32::MAX)
            } else {
                CellId((current_pick % cells.len()) as u32)
            };
            for cur in [current, CellId(u32::MAX)] {
                let reference = {
                    let best = batch.first();
                    let cur_rssi = batch.iter().find(|m| m.cell == cur).map(|m| m.rssi_dbm);
                    match (best, cur_rssi) {
                        (None, _) => None,
                        (Some(b), None) => Some(b.cell),
                        (Some(b), Some(c)) => {
                            if b.cell != cur && b.rssi_dbm >= c + hysteresis_db {
                                Some(b.cell)
                            } else {
                                Some(cur)
                            }
                        }
                    }
                };
                prop_assert_eq!(
                    map.best_cell_hysteresis(at, cur, hysteresis_db, tier),
                    reference,
                    "hysteresis path diverged at {:?} (current {:?})", at, cur
                );
            }
        }
    }
}

proptest! {
    // ---------------------------------------------------------------
    // Scenario-spec text format: the canonical rendering is lossless.
    // parse(render(spec)) == spec over arbitrary field combinations —
    // including awkward names (spaces, quotes, backslashes), arbitrary
    // seed paths, raw-bit floats, and every enum variant. This is the
    // contract the content-addressed sweep store keys on.
    // ---------------------------------------------------------------
    #[test]
    fn scenario_spec_text_roundtrips(
        identity in (
            "[a-zA-Z0-9 _()+\"\\\\]{0,12}",
            0u8..2,
            0u64..u64::MAX,
            proptest::collection::vec("[a-zA-Z0-9 /+\"\\\\]{1,10}", 1..4),
            0u64..1000,
        ),
        shape in (
            0.5f64..5000.0,
            0usize..6,
            1u32..6,
            0u32..12,
            0usize..4,
            10.0f64..2000.0,
        ),
        geometry in (
            500.0f64..10_000.0,
            -500.0f64..5000.0,
            0u8..2,
            0u8..2,
            0u8..2,
        ),
        population in (
            0u32..30,
            0u32..30,
            0u32..30,
            0usize..3,
            0.0f64..100.0,
            0.5f64..20.0,
        ),
        traffic in (
            1.0f64..50.0,
            0u32..5,
            0u32..5,
            0u32..5,
            0u8..8,
        ),
        overrides in (
            (0u8..2, 1u64..100_000),
            (0u8..2, 1u64..100_000),
            (0u8..2, 1u64..100_000),
            (0u8..2, 1u64..100_000),
        ),
        fault_shapes in (
            prop::collection::vec((0u32..40, 0.0f64..500.0, 0.001f64..200.0), 0..3),
            prop::collection::vec(
                (0u32..100, 0.0f64..500.0, 0.5f64..60.0, 0.05f64..0.95, 0.0f64..0.99, 1u32..5),
                0..3,
            ),
            prop::collection::vec((0u32..100, 0.0f64..500.0, 0u8..2, 0.001f64..60.0), 0..3),
            prop::collection::vec((0.0f64..500.0, 0.001f64..200.0), 0..2),
        ),
    ) {
        let (name, seed_kind, raw_seed, segments, replication) = identity;
        let (duration_s, arch_pick, n_domains, micro_per_domain, micro_kind_pick, spacing) = shape;
        let (width, street_y, share_upper, macro_hole, satellite) = geometry;
        let (pedestrians, cyclists, vehicles, class_pick, pause, cyclist_speed) = population;
        let (vehicle_speed, voice_every, video_every, web_every, factors_bits) = traffic;
        let (route_ms, semisoft_ms, lifetime_ms, paging_ms) = overrides;
        let (outage_shapes, flap_shapes, failover_shapes, eclipse_shapes) = fault_shapes;
        use mtnet_core::scenario::ArchKind;
        use mtnet_core::spec::{
            CellOutage, EclipseWindow, FaultSpec, LinkFlap, RsmcFailover, ScenarioSpec, SeedSpec,
        };

        let archs = [
            ArchKind::multi_tier(),
            ArchKind::multi_tier_hard(),
            ArchKind::multi_tier_no_rsmc(),
            ArchKind::MultiTier { rsmc: false, semisoft: false },
            ArchKind::PureMobileIp,
            ArchKind::FlatCellularIp,
        ];
        let opt = |(on, ms): (u8, u64)| (on == 1).then_some(ms);
        // Arbitrary-but-valid fault schedules: windows are nonempty, flap
        // domains stay in range, and jitter respects the validation bound
        // jitter < period * min(duty, 1 - duty).
        let faults = FaultSpec {
            cell_outages: outage_shapes
                .iter()
                .map(|&(cell, start_s, width_s)| CellOutage {
                    cell,
                    start_s,
                    end_s: start_s + width_s,
                })
                .collect(),
            link_flaps: flap_shapes
                .iter()
                .map(|&(dom, start_s, period_s, duty, jitter_frac, count)| LinkFlap {
                    domain: dom % n_domains,
                    start_s,
                    period_s,
                    duty,
                    jitter_s: jitter_frac * period_s * duty.min(1.0 - duty),
                    count,
                })
                .collect(),
            rsmc_failovers: failover_shapes
                .iter()
                .map(|&(dom, at_s, has_takeover, takeover_s)| RsmcFailover {
                    domain: dom % n_domains,
                    at_s,
                    takeover_s: (has_takeover == 1).then_some(takeover_s),
                })
                .collect(),
            eclipses: eclipse_shapes
                .iter()
                .map(|&(start_s, width_s)| EclipseWindow {
                    start_s,
                    end_s: start_s + width_s,
                })
                .collect(),
        };
        let spec = ScenarioSpec {
            name,
            seed: if seed_kind == 0 {
                SeedSpec::Raw(raw_seed)
            } else {
                SeedSpec::Path { path: segments, replication }
            },
            duration_s,
            arch: archs[arch_pick],
            n_domains,
            micro_per_domain,
            micro_kind: CellKind::ALL[micro_kind_pick],
            micro_spacing_m: spacing,
            domain_width_m: width,
            street_y_m: street_y,
            share_upper: share_upper == 1,
            macro_hole: macro_hole == 1,
            satellite: satellite == 1,
            pedestrians,
            cyclists,
            vehicles,
            pedestrian_class: mtnet_mobility::SpeedClass::ALL[class_pick],
            pedestrian_pause_s: pause,
            cyclist_speed_mps: cyclist_speed,
            vehicle_speed_mps: vehicle_speed,
            voice_every,
            video_every,
            web_every,
            factors: HandoffFactors {
                speed: factors_bits & 1 != 0,
                signal: factors_bits & 2 != 0,
                resources: factors_bits & 4 != 0,
            },
            route_update_ms: opt(route_ms),
            semisoft_delay_ms: opt(semisoft_ms),
            table_lifetime_ms: opt(lifetime_ms),
            paging_update_ms: opt(paging_ms),
            // Metro keys, derived like `shards`: raw_seed bits cover both
            // the elided (default) and rendered forms of each.
            move_sample_ms: (raw_seed & 1 != 0).then_some(raw_seed % 9_000 + 1),
            location_update_ms: (raw_seed & 2 != 0).then_some(raw_seed % 90_000 + 1),
            aggregate_qos: raw_seed & 4 != 0,
            idle_camping: raw_seed & 8 != 0,
            load_curve: (raw_seed & 16 != 0)
                .then_some(((raw_seed % 300 + 1) as f64, (raw_seed % 13 + 2) as f64 * 0.5)),
            // Derived, not a fresh strategy: covers both the elided
            // (shards = 1) and rendered (shards > 1) forms.
            shards: (raw_seed % 4 + 1) as u32,
            faults,
        };
        let text = spec.render();
        let back = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(&back, &spec, "round-trip drifted\n{}", text);
        // Rendering is canonical: a second render of the parsed value is
        // byte-identical, so the store key is stable across round trips.
        prop_assert_eq!(back.render(), text);
    }

    // ---------------------------------------------------------------
    // Link flaps: under the spec validation bound
    // jitter < period * min(duty, 1 - duty), the expanded edge stream is
    // strictly monotone and down/up edges pair exactly — for ANY jitter
    // draws in [0, 1). This is the invariant the fault engine's plan
    // compiler relies on (its draws come from a seeded child stream).
    // ---------------------------------------------------------------
    #[test]
    fn link_flap_edges_are_monotone_and_paired(
        start_s in 0.0f64..1000.0,
        period_s in 0.01f64..500.0,
        duty in 0.01f64..0.99,
        jitter_frac in 0.0f64..0.999,
        count in 1u32..50,
        draws in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 50),
    ) {
        let jitter_s = jitter_frac * period_s * duty.min(1.0 - duty);
        let mut edges = Vec::new();
        for k in 0..count {
            let (j_down, j_up) = draws[k as usize];
            let base = start_s + f64::from(k) * period_s;
            edges.push((base + j_down * jitter_s, true));
            edges.push((base + duty * period_s + j_up * jitter_s, false));
        }
        let mut down_open = false;
        for (i, w) in edges.windows(2).enumerate() {
            prop_assert!(
                w[0].0 < w[1].0,
                "edge {i} not strictly before its successor: {edges:?}"
            );
        }
        for &(_, down) in &edges {
            prop_assert_ne!(down, down_open, "unpaired edge in {:?}", &edges);
            down_open = down;
        }
        prop_assert!(!down_open, "stream must end restored");
    }

    // ---------------------------------------------------------------
    // Cell outages: arbitrary down/up toggle sequences never leave the
    // CellMap inconsistent — a downed cell stays enumerable (present)
    // but silent on every measurement path (absent from coverage), an
    // up cell measures exactly as if the outage never happened, and
    // `set_cell_down` reports exactly the real state changes.
    // ---------------------------------------------------------------
    #[test]
    fn cell_outage_toggles_keep_cellmap_consistent(
        cells in prop::collection::vec(
            (-10_000.0f64..10_000.0, -10_000.0f64..10_000.0, 0usize..4),
            1..12,
        ),
        toggles in prop::collection::vec((0usize..12, any::<bool>()), 1..40),
        probe in (-12_000.0f64..12_000.0, -12_000.0f64..12_000.0),
    ) {
        let kinds = [CellKind::Pico, CellKind::Micro, CellKind::Macro, CellKind::Satellite];
        let mut map = CellMap::new(5);
        let mut reference = CellMap::new(5);
        for (i, &(x, y, k)) in cells.iter().enumerate() {
            let cell = Cell::new(CellId(i as u32), kinds[k], Point::new(x, y), NodeId(i as u32));
            map.add(cell.clone());
            reference.add(cell);
        }
        let at = Point::new(probe.0, probe.1);
        let mut down = vec![false; cells.len()];
        for &(pick, to_down) in &toggles {
            let idx = pick % cells.len();
            let id = CellId(idx as u32);
            let changed = map.set_cell_down(id, to_down);
            prop_assert_eq!(changed, down[idx] != to_down, "change report lies");
            down[idx] = to_down;
            prop_assert_eq!(map.is_cell_down(id), to_down);
            // Present: every cell stays enumerable regardless of state.
            prop_assert_eq!(map.cells().count(), cells.len());
            // Absent from coverage: measurements see exactly the up set.
            let measured = map.measure(at, None);
            for m in &measured {
                prop_assert!(!down[m.cell.0 as usize], "downed cell answered a probe");
            }
            let expected_up: Vec<_> = reference
                .measure(at, None)
                .into_iter()
                .filter(|m| !down[m.cell.0 as usize])
                .collect();
            prop_assert_eq!(&measured, &expected_up, "up cells must measure unperturbed");
            for (i, &d) in down.iter().enumerate() {
                let rssi = map.rssi_if_covered(CellId(i as u32), at);
                if d {
                    prop_assert!(rssi.is_none(), "downed cell covered the probe");
                } else {
                    prop_assert_eq!(rssi, reference.rssi_if_covered(CellId(i as u32), at));
                }
            }
        }
    }
}
