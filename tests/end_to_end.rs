//! End-to-end scenario tests: full worlds, every architecture, asserting
//! the reproduction's headline shapes (the claims recorded in
//! `EXPERIMENTS.md`). These are the slowest tests in the suite; they use
//! moderate windows and release-friendly populations.

use mtnet_core::scenario::{ArchKind, Population, Scenario};

#[test]
fn all_architectures_deliver_traffic() {
    for arch in [
        ArchKind::multi_tier(),
        ArchKind::multi_tier_hard(),
        ArchKind::multi_tier_no_rsmc(),
        ArchKind::PureMobileIp,
        ArchKind::FlatCellularIp,
    ] {
        let r = Scenario::small_city(1).with_arch(arch).run_secs(45.0);
        let q = r.aggregate_qos();
        assert!(q.sent > 1000, "{}: traffic generated", arch.label());
        assert!(
            q.loss_rate < 0.5,
            "{}: catastrophic loss {:.3} (drops {:?})",
            arch.label(),
            q.loss_rate,
            r.drops
        );
        assert!(
            q.received <= q.sent,
            "{}: accounting sane (dups filtered)",
            arch.label()
        );
    }
}

#[test]
fn multi_tier_beats_pure_mobile_ip_on_delay() {
    // Triangle routing vs RSMC route optimization (the E2/E10 shape).
    let multi = Scenario::small_city(2).run_secs(60.0).aggregate_qos();
    let pure = Scenario::small_city(2)
        .with_arch(ArchKind::PureMobileIp)
        .run_secs(60.0)
        .aggregate_qos();
    assert!(
        multi.mean_delay_ms + 10.0 < pure.mean_delay_ms,
        "optimized {:.1}ms should be well under triangle {:.1}ms",
        multi.mean_delay_ms,
        pure.mean_delay_ms
    );
}

#[test]
fn multi_tier_beats_flat_cip_for_fast_nodes() {
    // The macro umbrella is the whole point of the multi-tier design
    // (the E11 shape): fast nodes outrun a micro-only deployment.
    let pop = Population {
        pedestrians: 0,
        vehicles: 2,
        cyclists: 0,
    };
    let multi = Scenario::small_city(3).with_population(pop).run_secs(120.0);
    let flat = Scenario::small_city(3)
        .with_arch(ArchKind::FlatCellularIp)
        .with_population(pop)
        .run_secs(120.0);
    assert!(
        multi.aggregate_qos().loss_rate < flat.aggregate_qos().loss_rate,
        "multi-tier loss {:.4} must beat flat CIP {:.4}",
        multi.aggregate_qos().loss_rate,
        flat.aggregate_qos().loss_rate
    );
    assert!(
        multi.handoffs.outage_samples < flat.handoffs.outage_samples,
        "macro umbrella covers the inter-domain gaps"
    );
}

#[test]
fn rsmc_reduces_delay_vs_no_rsmc() {
    let with = Scenario::small_city(4).run_secs(60.0).aggregate_qos();
    let without = Scenario::small_city(4)
        .with_arch(ArchKind::multi_tier_no_rsmc())
        .run_secs(60.0)
        .aggregate_qos();
    assert!(
        with.mean_delay_ms < without.mean_delay_ms,
        "RSMC CN-notification should cut delay: {:.1} !< {:.1}",
        with.mean_delay_ms,
        without.mean_delay_ms
    );
}

#[test]
fn handoff_reports_are_internally_consistent() {
    let r = Scenario::small_city(5)
        .with_population(Population {
            pedestrians: 4,
            vehicles: 2,
            cyclists: 2,
        })
        .run_secs(120.0);
    // Every latency sample belongs to a completed handoff type.
    for (ht, summary) in &r.handoffs.latency_ms {
        let completed = r.handoffs.completed.get(ht).copied().unwrap_or(0);
        assert!(
            summary.count() <= completed,
            "{ht}: {} latency samples but only {completed} completions",
            summary.count()
        );
    }
    // Signaling per handoff is finite and positive when handoffs happened.
    if r.handoffs.total() > 0 {
        assert!(r.signaling_per_handoff() > 0.0);
    }
}

#[test]
fn longer_runs_do_not_leak_state() {
    // Soft state must stay bounded: run long, verify caches swept.
    let r = Scenario::single_domain(6).run_secs(240.0);
    let q = r.aggregate_qos();
    assert!(
        q.loss_rate < 0.05,
        "steady state stays healthy: {:.4}",
        q.loss_rate
    );
    // Events scale linearly-ish with time; a leak would explode this.
    assert!(
        r.events_processed < 3_000_000,
        "event count sane: {}",
        r.events_processed
    );
}

#[test]
fn seeded_reproducibility_across_architectures() {
    for arch in [ArchKind::multi_tier(), ArchKind::FlatCellularIp] {
        let a = Scenario::commute_corridor(9).with_arch(arch).run_secs(30.0);
        let b = Scenario::commute_corridor(9).with_arch(arch).run_secs(30.0);
        assert_eq!(a.events_processed, b.events_processed, "{}", arch.label());
        assert_eq!(
            a.aggregate_qos().received,
            b.aggregate_qos().received,
            "{}",
            arch.label()
        );
    }
}
