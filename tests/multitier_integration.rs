//! Integration: the multi-tier mobility management (cell tables, handoff
//! engine, RSMC) composed outside the full simulator — §3 and §4 logic
//! working together over the Fig 3.1 hierarchy.

use mtnet_core::handoff::{
    classify, Candidate, CurrentAttachment, DecisionConfig, HandoffDecision, HandoffEngine,
    HandoffFactors, HandoffType,
};
use mtnet_core::hierarchy::Hierarchy;
use mtnet_core::location::LocationDirectory;
use mtnet_core::rsmc::Rsmc;
use mtnet_core::tier::Tier;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use mtnet_sim::{SimDuration, SimTime};

fn addr(s: &str) -> Addr {
    s.parse().unwrap()
}

/// Fig 3.1: R3(100) over R1(101), R2(102); A(1)←B(2),C(3); D(4)←E(5),F(6).
fn fig31() -> Hierarchy {
    let mut h = Hierarchy::new();
    let r3 = h.add_upper_macro(CellId(100));
    h.add_domain(CellId(101), Some(r3));
    h.add_domain(CellId(102), Some(r3));
    h.add_micro(CellId(1), CellId(101));
    h.add_micro(CellId(2), CellId(1));
    h.add_micro(CellId(3), CellId(1));
    h.add_micro(CellId(4), CellId(102));
    h.add_micro(CellId(5), CellId(4));
    h.add_micro(CellId(6), CellId(4));
    h
}

#[test]
fn paper_walkthrough_x_y_z() {
    // The full §3.2 walkthrough: X does macro→micro, Y micro→macro,
    // Z micro→micro — each handoff classified and reflected in the tables.
    let h = fig31();
    let mut dir = LocationDirectory::new(&h, SimDuration::from_secs(6));
    let t0 = SimTime::ZERO;
    let x = addr("10.0.2.1");
    let y = addr("10.0.2.2");
    let z = addr("10.0.2.3");

    // Initial positions: X on macro R1, Y on micro C, Z on micro F.
    dir.on_location_message(&h, x, CellId(101), t0);
    dir.on_location_message(&h, y, CellId(3), t0);
    dir.on_location_message(&h, z, CellId(6), t0);

    // X: macro R1 → micro B (Fig 3.4a).
    assert_eq!(
        classify(&h, CellId(101), CellId(2)),
        HandoffType::IntraMacroToMicro
    );
    dir.on_update_location(&h, x, CellId(2), SimTime::from_secs(1));
    dir.on_delete_location(x, CellId(101));
    // The paper's resulting records: B, A, R1, R3 know the way to X.
    let t = SimTime::from_secs(2);
    assert_eq!(dir.resolve_serving_cell(x, CellId(100), t), Some(CellId(2)));

    // Y: micro C → macro R1 (Fig 3.4b).
    assert_eq!(
        classify(&h, CellId(3), CellId(101)),
        HandoffType::IntraMicroToMacro
    );
    dir.on_update_location(&h, y, CellId(101), SimTime::from_secs(1));
    dir.on_delete_location(y, CellId(3));
    // The micro-first lookup order means R1's *stale* micro record (from
    // Y's time at C) shadows the fresh macro record until the
    // time-limitation erases it — a real property of the paper's scheme.
    let shadowed = dir.locate(&h, y, CellId(101), t).unwrap();
    assert_eq!(
        shadowed.hit.tier(),
        Tier::Micro,
        "stale micro record shadows first"
    );
    // Refresh only the macro attachment past the old record's lifetime…
    dir.on_location_message(&h, y, CellId(101), SimTime::from_secs(5));
    let after_expiry = SimTime::from_secs(7);
    let loc = dir.locate(&h, y, CellId(101), after_expiry).unwrap();
    assert_eq!(loc.hit.tier(), Tier::Macro, "macro_table holds Y now");

    // Z: micro F → micro E (Fig 3.4c).
    assert_eq!(
        classify(&h, CellId(6), CellId(5)),
        HandoffType::IntraMicroToMicro
    );
    dir.on_update_location(&h, z, CellId(5), SimTime::from_secs(1));
    dir.on_delete_location(z, CellId(6));
    assert_eq!(dir.resolve_serving_cell(z, CellId(102), t), Some(CellId(5)));

    // Counters: 3 initial + 1 refresh location messages, 3 updates,
    // 3 deletes.
    assert_eq!(dir.counters(), (4, 3, 3));
}

#[test]
fn decision_engine_drives_the_expected_procedures() {
    let h = fig31();
    let engine = HandoffEngine::new(DecisionConfig::default(), HandoffFactors::all());
    // A node slowing down under macro coverage with a strong micro nearby:
    // the engine proposes the macro→micro switch of Fig 3.4a.
    let decision = engine.decide(
        1.0,
        Some(CurrentAttachment {
            cell: CellId(101),
            tier: Tier::Macro,
            rssi_dbm: Some(-70.0),
        }),
        &[
            Candidate {
                cell: CellId(101),
                tier: Tier::Macro,
                rssi_dbm: -70.0,
                free_ratio: 0.8,
            },
            Candidate {
                cell: CellId(2),
                tier: Tier::Micro,
                rssi_dbm: -65.0,
                free_ratio: 0.9,
            },
        ],
    );
    let HandoffDecision::Handoff { target, .. } = decision else {
        panic!("expected a handoff, got {decision:?}");
    };
    assert_eq!(
        classify(&h, CellId(101), target),
        HandoffType::IntraMacroToMicro
    );
}

#[test]
fn rsmc_location_cache_outlives_cell_tables() {
    let h = fig31();
    let mut dir = LocationDirectory::new(&h, SimDuration::from_secs(6));
    let mut rsmc = Rsmc::new(addr("20.0.0.1"));
    let mn = addr("10.0.2.1");

    dir.on_location_message(&h, mn, CellId(2), SimTime::ZERO);
    rsmc.on_route_update(mn, CellId(2), SimTime::ZERO, 2);

    // A minute later the cell tables have long erased the record…
    let late = SimTime::from_secs(60);
    assert!(dir.locate(&h, mn, CellId(2), late).is_none());
    // …but the RSMC still places the node (its cache is paging-scale).
    assert_eq!(rsmc.locate(mn, late), Some(CellId(2)));
}

#[test]
fn rsmc_notifications_only_on_movement() {
    let mut rsmc = Rsmc::new(addr("20.0.0.1"));
    let mn = addr("10.0.2.1");
    let mut notify_count = 0;
    let mut t = SimTime::ZERO;
    // Ten updates from the same cell, then one move.
    for _ in 0..10 {
        notify_count += rsmc.on_route_update(mn, CellId(2), t, 2).len();
        t += SimDuration::from_secs(1);
    }
    notify_count += rsmc.on_route_update(mn, CellId(3), t, 2).len();
    assert_eq!(
        notify_count, 4,
        "2 for the first sighting + 2 for the move; refreshes are silent"
    );
}

#[test]
fn inter_domain_classification_matches_hierarchy() {
    let h = fig31();
    // B(2) in domain 0 → E(5) in domain 1, both under R3: Fig 3.2.
    assert_eq!(
        classify(&h, CellId(2), CellId(5)),
        HandoffType::InterDomainSameUpper
    );

    // A third domain with no upper: Fig 3.3 from anywhere.
    let mut h2 = fig31();
    h2.add_domain(CellId(103), None);
    h2.add_micro(CellId(7), CellId(103));
    assert_eq!(
        classify(&h2, CellId(2), CellId(7)),
        HandoffType::InterDomainDifferentUpper
    );
}

#[test]
fn resource_exhaustion_tier_fallback_in_context() {
    // §3.2 / Fig 3.2: "If macro-tier has no free channels for handoff, MN
    // turns to ask micro-tier for handoff."
    let engine = HandoffEngine::new(DecisionConfig::default(), HandoffFactors::all());
    let decision = engine.decide(
        20.0, // fast: wants macro
        None,
        &[
            Candidate {
                cell: CellId(101),
                tier: Tier::Macro,
                rssi_dbm: -60.0,
                free_ratio: 0.0,
            },
            Candidate {
                cell: CellId(2),
                tier: Tier::Micro,
                rssi_dbm: -70.0,
                free_ratio: 0.9,
            },
        ],
    );
    assert_eq!(
        decision,
        HandoffDecision::Handoff {
            target: CellId(2),
            tier: Tier::Micro,
            fallback: None
        },
        "macro full → micro fallback chosen directly"
    );
}

#[test]
fn stale_records_age_out_exactly_per_time_limitation() {
    let h = fig31();
    let lifetime = SimDuration::from_secs(4);
    let mut dir = LocationDirectory::new(&h, lifetime);
    let mn = addr("10.0.2.1");
    dir.on_location_message(&h, mn, CellId(2), SimTime::ZERO);
    assert!(dir
        .locate(&h, mn, CellId(2), SimTime::from_millis(3999))
        .is_some());
    assert!(dir
        .locate(&h, mn, CellId(2), SimTime::from_millis(4000))
        .is_none());
    // Sweep reclaims the memory.
    let evicted = dir.sweep(SimTime::from_secs(5));
    assert_eq!(evicted, 4, "record existed at B, A, R1, R3");
    assert_eq!(dir.total_records(), 0);
}
