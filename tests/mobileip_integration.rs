//! Integration: the three Mobile IP entities (MN, FA, HA) driven together
//! through complete protocol exchanges — no simulator, pure message
//! passing, verifying the state machines compose (paper §2.2.1, Fig 2.2).

use mtnet_mobileip::{ForeignAgent, HomeAgent, MnAction, MnState, MobileNode, RegistrationRequest};
use mtnet_net::{Addr, Prefix};
use mtnet_sim::{SimDuration, SimTime};

fn addr(s: &str) -> Addr {
    s.parse().unwrap()
}

struct Setup {
    ha: HomeAgent,
    fa1: ForeignAgent,
    fa2: ForeignAgent,
    mn: MobileNode,
}

fn setup() -> Setup {
    let home_prefix: Prefix = "10.0.0.0/16".parse().unwrap();
    Setup {
        ha: HomeAgent::new(addr("10.0.0.1"), home_prefix),
        fa1: ForeignAgent::new(addr("20.0.0.1")),
        fa2: ForeignAgent::new(addr("20.1.0.1")),
        mn: MobileNode::new(addr("10.0.2.9"), addr("10.0.0.1")),
    }
}

/// Runs one complete registration through FA → HA → FA → MN.
fn register_via(s: &mut Setup, which: u8, now: SimTime) -> mtnet_mobileip::RegistrationReply {
    let adv = if which == 1 {
        s.fa1.make_advertisement()
    } else {
        s.fa2.make_advertisement()
    };
    let MnAction::SendRequest(req) = s.mn.on_advertisement(&adv, now) else {
        panic!("MN must register after hearing a new agent");
    };
    let fa = if which == 1 { &mut s.fa1 } else { &mut s.fa2 };
    let relayed = fa.relay_registration(&req, now).expect("FA relays");
    let reply = s.ha.process_registration(&relayed, now);
    let reply = fa.process_reply(&reply, now);
    s.mn.on_reply(&reply, now);
    reply
}

#[test]
fn full_registration_cycle() {
    let mut s = setup();
    let reply = register_via(&mut s, 1, SimTime::ZERO);
    assert!(reply.accepted());
    // All three parties agree on the binding.
    assert_eq!(s.mn.coa(SimTime::from_secs(1)), Some(addr("20.0.0.1")));
    assert!(s.fa1.has_visitor(addr("10.0.2.9"), SimTime::from_secs(1)));
    assert_eq!(
        s.ha.tunnel_endpoint(addr("10.0.2.9"), SimTime::from_secs(1)),
        Some(addr("20.0.0.1"))
    );
}

#[test]
fn movement_between_agents_rebinds() {
    let mut s = setup();
    register_via(&mut s, 1, SimTime::ZERO);
    // The node moves into FA2's link.
    register_via(&mut s, 2, SimTime::from_secs(10));
    assert_eq!(s.mn.coa(SimTime::from_secs(11)), Some(addr("20.1.0.1")));
    assert_eq!(
        s.ha.tunnel_endpoint(addr("10.0.2.9"), SimTime::from_secs(11)),
        Some(addr("20.1.0.1")),
        "HA follows the node"
    );
    // Smooth handoff: FA1 learns where the node went and forwards.
    s.fa1
        .install_forward(addr("10.0.2.9"), addr("20.1.0.1"), SimTime::from_secs(10));
    assert_eq!(
        s.fa1
            .forward_endpoint(addr("10.0.2.9"), SimTime::from_secs(11)),
        Some(addr("20.1.0.1"))
    );
    assert_eq!(s.mn.counters().1, 1, "one handoff recorded by the MN");
}

#[test]
fn tunnel_packet_walkthrough_fig22() {
    // Step 2(a) of the paper: host → HA (intercept) → tunnel → FA
    // (detunnel) → MN.
    let mut s = setup();
    register_via(&mut s, 1, SimTime::ZERO);
    let t = SimTime::from_secs(2);
    let mn_home = addr("10.0.2.9");

    // CN packet arrives at the home network.
    let mut pkt = mtnet_net::Packet::new(
        mtnet_net::PacketId(1),
        mtnet_net::FlowId(1),
        0,
        addr("30.0.0.2"),
        mn_home,
        512,
        t,
        (),
    );
    // HA intercepts and encapsulates.
    let coa = s.ha.tunnel_endpoint_counted(mn_home, t).expect("bound");
    pkt.encapsulate(s.ha.addr(), coa, mtnet_net::TunnelKind::HomeAgent);
    assert_eq!(pkt.routing_dst(), addr("20.0.0.1"), "routed to the CoA");

    // FA detunnels and checks its visitor list.
    let header = pkt.decapsulate().expect("tunnel header present");
    assert_eq!(header.kind, mtnet_net::TunnelKind::HomeAgent);
    assert_eq!(pkt.routing_dst(), mn_home, "inner destination restored");
    assert!(s.fa1.has_visitor(mn_home, t), "FA delivers on its link");
}

#[test]
fn registration_expiry_forces_reregistration() {
    let mut s = setup();
    s.mn = MobileNode::new(addr("10.0.2.9"), addr("10.0.0.1"))
        .with_lifetime(SimDuration::from_secs(30));
    register_via(&mut s, 1, SimTime::ZERO);
    assert!(s.mn.coa(SimTime::from_secs(29)).is_some());
    assert!(s.mn.coa(SimTime::from_secs(31)).is_none(), "binding lapsed");
    // The next advertisement from the same agent re-registers.
    let adv = s.fa1.make_advertisement();
    let action = s.mn.on_advertisement(&adv, SimTime::from_secs(31));
    assert!(matches!(action, MnAction::SendRequest(_)));
}

#[test]
fn deregistration_at_home() {
    let mut s = setup();
    register_via(&mut s, 1, SimTime::ZERO);
    let dereg = RegistrationRequest::deregistration(addr("10.0.2.9"), addr("10.0.0.1"), 99);
    let reply = s.ha.process_registration(&dereg, SimTime::from_secs(5));
    assert!(reply.accepted());
    assert_eq!(
        s.ha.tunnel_endpoint(addr("10.0.2.9"), SimTime::from_secs(6)),
        None,
        "home again: no interception"
    );
}

#[test]
fn fa_capacity_denial_propagates_to_mn() {
    let mut s = setup();
    s.fa1 = ForeignAgent::new(addr("20.0.0.1")).with_max_visitors(0);
    let adv = s.fa1.make_advertisement();
    let MnAction::SendRequest(req) = s.mn.on_advertisement(&adv, SimTime::ZERO) else {
        panic!()
    };
    let denial = s.fa1.relay_registration(&req, SimTime::ZERO).unwrap_err();
    s.mn.on_reply(&denial, SimTime::ZERO);
    assert_eq!(s.mn.state(), MnState::Searching, "MN backs off to search");
}

#[test]
fn concurrent_visitors_do_not_interfere() {
    let mut s = setup();
    let mut mn2 = MobileNode::new(addr("10.0.2.10"), addr("10.0.0.1"));
    register_via(&mut s, 1, SimTime::ZERO);

    let adv = s.fa1.make_advertisement();
    let MnAction::SendRequest(req2) = mn2.on_advertisement(&adv, SimTime::ZERO) else {
        panic!()
    };
    let relayed = s.fa1.relay_registration(&req2, SimTime::ZERO).unwrap();
    let reply = s.ha.process_registration(&relayed, SimTime::ZERO);
    let reply = s.fa1.process_reply(&reply, SimTime::ZERO);
    mn2.on_reply(&reply, SimTime::ZERO);

    let t = SimTime::from_secs(1);
    assert!(s.fa1.has_visitor(addr("10.0.2.9"), t));
    assert!(s.fa1.has_visitor(addr("10.0.2.10"), t));
    assert_eq!(s.fa1.visitor_count(), 2);
    assert_eq!(s.ha.binding_count(), 2);
}
