//! Determinism regression tests for the parallel replication engine.
//!
//! The contract (see `mtnet_sim::runner`): a batch of simulation runs is a
//! pure function of its job list. The same master seed must produce
//! **byte-identical** run reports whether the batch executes on one worker
//! or many, whether a run executes alone or alongside others, and across
//! repeated invocations. Fingerprints (`SimReport::fingerprint`) render
//! every metric with f64 bit patterns, so equality here is equality down
//! to the last ulp.

use mtnet_core::report::RunReport;
use mtnet_core::scenario::{ArchKind, Scenario};
use mtnet_sim::rng::replication_seed;
use mtnet_sim::runner::BatchRunner;

const MASTER_SEED: u64 = 42;
const SECS: f64 = 12.0;

/// The E10-shaped batch: every architecture × two replications, each run
/// seeded purely from its (experiment, architecture, replication) path.
fn e10_style_jobs() -> Vec<Scenario> {
    let mut jobs = Vec::new();
    for arch in [
        ArchKind::multi_tier(),
        ArchKind::PureMobileIp,
        ArchKind::FlatCellularIp,
    ] {
        for rep in 0..2u64 {
            let seed = replication_seed(MASTER_SEED, "E10", arch.label(), rep);
            jobs.push(Scenario::small_city(seed).with_arch(arch));
        }
    }
    jobs
}

fn run_jobs(threads: usize, jobs: Vec<Scenario>) -> Vec<RunReport> {
    BatchRunner::new(threads).run(jobs, |i, scenario| {
        scenario.run_report(SECS, (i % 2) as u64)
    })
}

fn fingerprints(reports: &[RunReport]) -> Vec<String> {
    reports.iter().map(RunReport::fingerprint).collect()
}

#[test]
fn single_threaded_and_parallel_runs_are_byte_identical() {
    let seq = fingerprints(&run_jobs(1, e10_style_jobs()));
    let par = fingerprints(&run_jobs(4, e10_style_jobs()));
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(s, p, "job {i} diverged between 1 and 4 threads");
    }
}

#[test]
fn repeated_parallel_batches_are_byte_identical() {
    let a = fingerprints(&run_jobs(3, e10_style_jobs()));
    let b = fingerprints(&run_jobs(3, e10_style_jobs()));
    assert_eq!(a, b);
}

#[test]
fn a_run_is_unaffected_by_its_batch_mates() {
    // Runs must share no mutable state: executing one scenario alone must
    // reproduce exactly what it produced inside the full batch.
    let batch = run_jobs(4, e10_style_jobs());
    let lone_jobs = vec![e10_style_jobs().remove(3)];
    let lone = BatchRunner::new(1).run(lone_jobs, |_, s| s.run_report(SECS, 1));
    assert_eq!(batch[3].fingerprint(), lone[0].fingerprint());
}

#[test]
fn different_replications_actually_differ() {
    // Guard against a degenerate seed split (every replication identical):
    // the per-tuple streams must make replications distinct runs.
    let batch = run_jobs(2, e10_style_jobs());
    assert_ne!(
        batch[0].report.fingerprint(),
        batch[1].report.fingerprint(),
        "replications 0 and 1 of the same arm must not coincide"
    );
    assert_ne!(batch[0].seed, batch[1].seed);
}

#[test]
fn run_reports_carry_their_identity() {
    let batch = run_jobs(2, e10_style_jobs());
    assert_eq!(batch[0].label, "multi-tier+rsmc");
    assert_eq!(batch[2].label, "pure-mobile-ip");
    assert_eq!(batch[4].label, "flat-cellular-ip");
    assert_eq!(batch[5].replication, 1);
    assert_eq!(
        batch[5].seed,
        replication_seed(MASTER_SEED, "E10", "flat-cellular-ip", 1)
    );
}
