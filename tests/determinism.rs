//! Determinism regression tests for the parallel replication engine.
//!
//! The contract (see `mtnet_sim::runner`): a batch of simulation runs is a
//! pure function of its job list. The same master seed must produce
//! **byte-identical** run reports whether the batch executes on one worker
//! or many, whether a run executes alone or alongside others, and across
//! repeated invocations. Fingerprints (`SimReport::fingerprint`) render
//! every metric with f64 bit patterns, so equality here is equality down
//! to the last ulp.

use mtnet_core::report::RunReport;
use mtnet_core::scenario::{ArchKind, Scenario};
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::rng::replication_seed;
use mtnet_sim::runner::BatchRunner;

const MASTER_SEED: u64 = 42;
const SECS: f64 = 12.0;

/// The E10-shaped batch: every architecture × two replications, each run
/// seeded purely from its (experiment, architecture, replication) path.
fn e10_style_jobs() -> Vec<Scenario> {
    let mut jobs = Vec::new();
    for arch in [
        ArchKind::multi_tier(),
        ArchKind::PureMobileIp,
        ArchKind::FlatCellularIp,
    ] {
        for rep in 0..2u64 {
            let seed = replication_seed(MASTER_SEED, "E10", arch.label(), rep);
            jobs.push(Scenario::small_city(seed).with_arch(arch));
        }
    }
    jobs
}

fn run_jobs(threads: usize, jobs: Vec<Scenario>) -> Vec<RunReport> {
    BatchRunner::new(threads).run(jobs, |i, scenario| {
        scenario.run_report(SECS, (i % 2) as u64)
    })
}

fn fingerprints(reports: &[RunReport]) -> Vec<String> {
    reports.iter().map(RunReport::fingerprint).collect()
}

#[test]
fn single_threaded_and_parallel_runs_are_byte_identical() {
    let seq = fingerprints(&run_jobs(1, e10_style_jobs()));
    let par = fingerprints(&run_jobs(4, e10_style_jobs()));
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(s, p, "job {i} diverged between 1 and 4 threads");
    }
}

#[test]
fn repeated_parallel_batches_are_byte_identical() {
    let a = fingerprints(&run_jobs(3, e10_style_jobs()));
    let b = fingerprints(&run_jobs(3, e10_style_jobs()));
    assert_eq!(a, b);
}

#[test]
fn a_run_is_unaffected_by_its_batch_mates() {
    // Runs must share no mutable state: executing one scenario alone must
    // reproduce exactly what it produced inside the full batch.
    let batch = run_jobs(4, e10_style_jobs());
    let lone_jobs = vec![e10_style_jobs().remove(3)];
    let lone = BatchRunner::new(1).run(lone_jobs, |_, s| s.run_report(SECS, 1));
    assert_eq!(batch[3].fingerprint(), lone[0].fingerprint());
}

#[test]
fn different_replications_actually_differ() {
    // Guard against a degenerate seed split (every replication identical):
    // the per-tuple streams must make replications distinct runs.
    let batch = run_jobs(2, e10_style_jobs());
    assert_ne!(
        batch[0].report.fingerprint(),
        batch[1].report.fingerprint(),
        "replications 0 and 1 of the same arm must not coincide"
    );
    assert_ne!(batch[0].seed, batch[1].seed);
}

// ----------------------------------------------------------------------
// Determinism under faults: the contract extends unchanged to runs whose
// spec schedules infrastructure faults (outage windows, jittered link
// flaps, RSMC failover).
// ----------------------------------------------------------------------

/// A small-city spec with every fault category scheduled inside the
/// 12 s horizon, duplicated per architecture so the batch exercises the
/// fault path on both code shapes.
fn faulted_jobs() -> Vec<ScenarioSpec> {
    use mtnet_core::spec::{CellOutage, FaultSpec, LinkFlap, RsmcFailover};
    let faults = FaultSpec {
        cell_outages: vec![CellOutage {
            cell: 1,
            start_s: 2.0,
            end_s: 6.0,
        }],
        link_flaps: vec![LinkFlap {
            domain: 0,
            start_s: 1.0,
            period_s: 4.0,
            duty: 0.5,
            jitter_s: 0.5,
            count: 2,
        }],
        rsmc_failovers: vec![RsmcFailover {
            domain: 2,
            at_s: 7.0,
            takeover_s: Some(2.0),
        }],
        eclipses: Vec::new(),
    };
    [ArchKind::multi_tier(), ArchKind::PureMobileIp]
        .into_iter()
        .map(|arch| {
            ScenarioSpec::small_city()
                .with_arch(arch)
                .with_faults(faults.clone())
                .with_duration_s(SECS)
                .with_seed_path("faults", arch.label(), 0)
        })
        .collect()
}

fn run_specs(threads: usize, jobs: Vec<ScenarioSpec>) -> Vec<String> {
    BatchRunner::new(threads)
        .run(jobs, |_, spec| spec.run(MASTER_SEED))
        .iter()
        .map(|r| r.fingerprint())
        .collect()
}

#[test]
fn faulted_runs_are_byte_identical_across_thread_counts() {
    let seq = run_specs(1, faulted_jobs());
    let par = run_specs(4, faulted_jobs());
    assert_eq!(seq, par);
    // The faults actually fired (fingerprints carry the faults section);
    // a silently inert schedule would make this test vacuous.
    for fp in &seq {
        assert!(fp.contains("\nfaults: "), "no fault section in:\n{fp}");
    }
}

#[test]
fn repeated_faulted_batches_are_byte_identical() {
    assert_eq!(run_specs(3, faulted_jobs()), run_specs(3, faulted_jobs()));
}

#[test]
fn a_faulted_run_is_unaffected_by_its_batch_mates() {
    let batch = run_specs(4, faulted_jobs());
    let lone = run_specs(1, vec![faulted_jobs().remove(1)]);
    assert_eq!(batch[1], lone[0]);
}

#[test]
fn an_empty_fault_section_is_a_no_op() {
    // A spec with `faults` left default must fingerprint identically to
    // one that never mentions faults at all — fault support is strictly
    // opt-in, and E1–E12 results cannot move.
    use mtnet_core::spec::FaultSpec;
    let bare = ScenarioSpec::small_city()
        .with_duration_s(SECS)
        .with_seed_path("noop", "bare", 0);
    let with_empty = bare.clone().with_faults(FaultSpec::default());
    assert_eq!(bare.render(), with_empty.render(), "empty faults render");
    let a = bare.run(MASTER_SEED).fingerprint();
    let b = with_empty.run(MASTER_SEED).fingerprint();
    assert_eq!(a, b);
    assert!(!a.contains("faults:"), "quiet report grew a fault section");
}

// ----------------------------------------------------------------------
// Determinism under intra-world sharding: splitting one world across
// conservative time-window shards (`spec.shards` / `MTNET_SHARDS`) is a
// pure execution strategy — fingerprints must match the sequential
// engine byte-for-byte at every shard × thread combination, including
// when batch workers and shard threads are live at the same time.
// ----------------------------------------------------------------------

fn sharded(jobs: Vec<ScenarioSpec>, shards: u32) -> Vec<ScenarioSpec> {
    jobs.into_iter().map(|s| s.with_shards(shards)).collect()
}

#[test]
fn sharded_runs_are_byte_identical_across_architectures() {
    let jobs = |shards: u32| -> Vec<ScenarioSpec> {
        [
            ArchKind::multi_tier(),
            ArchKind::PureMobileIp,
            ArchKind::FlatCellularIp,
        ]
        .into_iter()
        .map(|arch| {
            ScenarioSpec::small_city()
                .with_arch(arch)
                .with_duration_s(SECS)
                .with_seed_path("shard", arch.label(), 0)
                .with_shards(shards)
        })
        .collect()
    };
    let baseline = run_specs(1, jobs(1));
    for shards in [2u32, 4] {
        for threads in [1usize, 4] {
            assert_eq!(
                baseline,
                run_specs(threads, jobs(shards)),
                "shards={shards} threads={threads} diverged from the sequential engine"
            );
        }
    }
}

#[test]
fn sharded_faulted_runs_match_sequential() {
    // The fault schedule is replicated on every shard; outage drops and
    // failover handling must still merge to the sequential figures.
    let baseline = run_specs(1, faulted_jobs());
    let shard2 = run_specs(4, sharded(faulted_jobs(), 2));
    assert_eq!(baseline, shard2);
    for fp in &shard2 {
        assert!(fp.contains("\nfaults: "), "no fault section in:\n{fp}");
    }
}

#[test]
fn repeated_sharded_batches_are_byte_identical() {
    let a = run_specs(3, sharded(faulted_jobs(), 2));
    let b = run_specs(3, sharded(faulted_jobs(), 2));
    assert_eq!(a, b);
}

#[test]
fn run_reports_carry_their_identity() {
    let batch = run_jobs(2, e10_style_jobs());
    assert_eq!(batch[0].label, "multi-tier+rsmc");
    assert_eq!(batch[2].label, "pure-mobile-ip");
    assert_eq!(batch[4].label, "flat-cellular-ip");
    assert_eq!(batch[5].replication, 1);
    assert_eq!(
        batch[5].seed,
        replication_seed(MASTER_SEED, "E10", "flat-cellular-ip", 1)
    );
}
